// Package noisedist turns a trained Shredder noise collection into noise
// *distributions*: per-member empirical quantile sketches plus each
// member's spatial ordering, from which fresh noise is sampled per query.
// A sample picks one member's distribution, draws stratified uniforms
// through the inverse CDF (the sketch), and scatters the values through
// that member's argsort — so sampled noise matches the trained tensor
// element-for-element in rank and value profile while every query sees
// noise never stored anywhere.
//
// This is the deployment story of the paper's §2.5 taken literally (a
// collection of noise *distributions*): instead of replaying K stored
// float64 tensors, a node keeps K int32 permutations and K capped
// float32 quantile sketches — strictly smaller per member, approaching
// half the resident bytes as the cut tensor grows — and draws unbounded
// fresh noise. Two designs that store less were measured and
// rejected: parametric (loc, scale) fits lose the trained value profile
// (−12 accuracy points at the default cut), and a single shared
// permutation collapses the noise into a low-dimensional family that
// leaks (mutual information 209 bits vs 67 with per-member orders, and
// −3 accuracy points). The per-member argsort is the irreducible learned
// structure; the parametric (loc, scale) MLE is kept alongside as a
// telemetry summary. All sampling flows through an explicitly seeded
// tensor.RNG, so a fixed seed reproduces the exact noise stream.
package noisedist

import (
	"fmt"
	"math"
	"sort"

	"shredder/internal/tensor"
)

// Kind selects the parametric family fitted over the trained values.
// The fitted (loc, scale) pairs summarize the mixture for telemetry and
// analytics; sampling itself is empirical (quantile sketches).
type Kind int

const (
	// Laplace fits location = median and scale = mean absolute deviation
	// from the median (the Laplace MLE). It matches the Laplace
	// initialization Shredder trains from, and heavy-ish tails survive
	// training, so it is the default.
	Laplace Kind = iota
	// Gaussian fits location = mean and scale = population standard
	// deviation (the Gaussian MLE).
	Gaussian
)

// String returns the parse-stable name of the kind.
func (k Kind) String() string {
	switch k {
	case Laplace:
		return "laplace"
	case Gaussian:
		return "gaussian"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a flag value to a Kind ("laplace", "gaussian"/"normal").
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "laplace":
		return Laplace, nil
	case "gaussian", "gauss", "normal", "norm":
		return Gaussian, nil
	}
	return 0, fmt.Errorf("noisedist: unknown distribution %q (want laplace or gaussian)", s)
}

// Component is one fitted (location, scale) pair. A Fitted built from a
// K-member collection carries K components — a scale mixture over the
// members — at two float64 each.
type Component struct {
	Loc, Scale float64
}

// Variance returns the analytic variance of the component under the kind.
func (c Component) variance(k Kind) float64 {
	if k == Laplace {
		return 2 * c.Scale * c.Scale
	}
	return c.Scale * c.Scale
}

// FitValues computes the maximum-likelihood Component of kind k over vals.
// The input slice is not modified.
func FitValues(vals []float64, k Kind) Component {
	if len(vals) == 0 {
		return Component{}
	}
	switch k {
	case Gaussian:
		var sum float64
		for _, v := range vals {
			sum += v
		}
		mean := sum / float64(len(vals))
		var sq float64
		for _, v := range vals {
			d := v - mean
			sq += d * d
		}
		return Component{Loc: mean, Scale: math.Sqrt(sq / float64(len(vals)))}
	default: // Laplace
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		med := median(sorted)
		var abs float64
		for _, v := range vals {
			abs += math.Abs(v - med)
		}
		return Component{Loc: med, Scale: abs / float64(len(vals))}
	}
}

// median of an already-sorted non-empty slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// maxSketchKnots caps the quantile sketch size. Accuracy improves
// monotonically with knots toward the stored-replay ceiling (exact
// quantile replay reproduces stored accuracy), so the cap only binds
// once the sketch is fine enough that the gap is noise; past ~128 knots
// nothing measurable is left.
const maxSketchKnots = 129

// sketchKnots picks the sketch size for an n-element member: as many
// knots as the memory budget allows, capped at maxSketchKnots. Knots
// are float32 (noise quantiles need nowhere near 15 digits), so the
// budget 4n + 4·knots + 16 < 8n (order + sketch + params vs stored
// float64s) solves to knots < n − 4; for n > 8 a fitted member is
// strictly smaller than a stored one. At the default LeNet cut
// (n = 120 → 115 knots) the sketch is nearly the exact per-value
// quantile function.
func sketchKnots(n int) int {
	k := n - 5
	if k > maxSketchKnots {
		k = maxSketchKnots
	}
	if k < 2 {
		k = 2
	}
	return k
}

// sketchOf builds a k-knot quantile sketch of vals: knot j holds the
// quantile at probability j/(k−1), linearly interpolated over the sorted
// values. The sketch is the inverse CDF sampled at equispaced
// probabilities, non-decreasing by construction.
func sketchOf(vals []float64, knots int) []float32 {
	v := append([]float64(nil), vals...)
	sort.Float64s(v)
	out := make([]float32, knots)
	for k := 0; k < knots; k++ {
		x := float64(k) * float64(len(v)-1) / float64(knots-1)
		i := int(x)
		if i >= len(v)-1 {
			out[k] = float32(v[len(v)-1])
			continue
		}
		frac := x - float64(i)
		out[k] = float32(v[i] + frac*(v[i+1]-v[i]))
	}
	return out
}

// quantile evaluates the sketch's inverse CDF at u ∈ [0, 1) by linear
// interpolation between knots.
func quantile(sketch []float32, u float64) float64 {
	x := u * float64(len(sketch)-1)
	i := int(x)
	if i >= len(sketch)-1 {
		return float64(sketch[len(sketch)-1])
	}
	frac := x - float64(i)
	a, b := float64(sketch[i]), float64(sketch[i+1])
	return a + frac*(b-a)
}

// Fitted is a sampleable noise distribution: one quantile sketch and one
// spatial ordering per trained member, plus parametric (loc, scale)
// summaries of the chosen family. Each Sample draws from one uniformly
// chosen member's distribution, mirroring the stored collection's member
// sampling.
type Fitted struct {
	// Kind is the parametric family of the Comps summaries.
	Kind Kind
	// Shape is the per-sample tensor shape sampling produces.
	Shape []int
	// Comps are the fitted (loc, scale) pairs, one per trained member.
	Comps []Component
	// Sketches[i] is member i's quantile sketch (inverse CDF at
	// equispaced probabilities), the value profile sampling draws from.
	// float32 knots: half the bytes, and quantization error (~1e−7
	// relative) is far below the sketch's own interpolation error.
	Sketches [][]float32
	// Orders[i] is the argsort of member i's trained values: Orders[i][j]
	// is the flat index holding the j-th smallest value. Sampling
	// scatters the j-th smallest fresh sample to Orders[i][j], so sampled
	// noise is rank-identical to the trained member. Orders are stored
	// per member: a single shared permutation was measured to cost both
	// accuracy and privacy (see the package comment).
	Orders [][]int32
}

// Fit builds a single-member Fitted from one trained tensor.
func Fit(t *tensor.Tensor, k Kind) *Fitted {
	f, err := FitMixture([]*tensor.Tensor{t}, k)
	if err != nil {
		panic(err) // single non-nil tensor cannot fail
	}
	return f
}

// FitMixture fits one component per member tensor: its quantile sketch,
// its argsort, and its (loc, scale) MLE summary. The float64 member
// values themselves are not retained — the sketch (fixed size) and the
// int32 order (half the bytes) replace them.
func FitMixture(members []*tensor.Tensor, k Kind) (*Fitted, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("noisedist: fit over zero members")
	}
	shape := members[0].Shape()
	knots := sketchKnots(tensor.Volume(shape))
	f := &Fitted{
		Kind:     k,
		Shape:    append([]int(nil), shape...),
		Comps:    make([]Component, len(members)),
		Sketches: make([][]float32, len(members)),
		Orders:   make([][]int32, len(members)),
	}
	for i, m := range members {
		if m == nil || !tensor.ShapeEq(m.Shape(), shape) {
			return nil, fmt.Errorf("noisedist: member %d shape mismatch", i)
		}
		f.Comps[i] = FitValues(m.Data(), k)
		f.Sketches[i] = sketchOf(m.Data(), knots)
		f.Orders[i] = argsort(m.Data())
	}
	return f, nil
}

// argsort returns the ascending argsort of vals as int32 flat indices.
func argsort(vals []float64) []int32 {
	order := make([]int32, len(vals))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
	return order
}

// Components returns the mixture size.
func (f *Fitted) Components() int { return len(f.Comps) }

// Variance returns the variance of one sampled element under the mixture
// (law of total variance over the uniformly chosen member). With sketches
// present it is exact for the piecewise-linear sampling distribution;
// otherwise it falls back to the parametric summaries.
func (f *Fitted) Variance() float64 {
	if len(f.Comps) == 0 {
		return 0
	}
	n := float64(len(f.Comps))
	if len(f.Sketches) == len(f.Comps) && f.Sketches[0] != nil {
		var mean, m2 float64
		for _, s := range f.Sketches {
			m1, mm2 := sketchMoments(s)
			mean += m1
			m2 += mm2
		}
		mean /= n
		return m2/n - mean*mean
	}
	var mean, m2, varSum float64
	for _, c := range f.Comps {
		mean += c.Loc
		m2 += c.Loc * c.Loc
		varSum += c.variance(f.Kind)
	}
	mean /= n
	return varSum/n + (m2/n - mean*mean)
}

// sketchMoments returns E[X] and E[X²] of X = quantile(sketch, U) for
// uniform U, exactly for the piecewise-linear inverse CDF: per segment
// [a, b], ∫(a+t(b−a))dt = (a+b)/2 and ∫(a+t(b−a))²dt = (a²+ab+b²)/3.
func sketchMoments(sketch []float32) (m1, m2 float64) {
	seg := 1 / float64(len(sketch)-1)
	for i := 0; i+1 < len(sketch); i++ {
		a, b := float64(sketch[i]), float64(sketch[i+1])
		m1 += (a + b) / 2 * seg
		m2 += (a*a + a*b + b*b) / 3 * seg
	}
	return m1, m2
}

// MeanLoc and MeanScale summarize the mixture for telemetry gauges.
func (f *Fitted) MeanLoc() float64 {
	var s float64
	for _, c := range f.Comps {
		s += c.Loc
	}
	return s / float64(max(1, len(f.Comps)))
}

// MeanScale returns the mixture's mean fitted scale.
func (f *Fitted) MeanScale() float64 {
	var s float64
	for _, c := range f.Comps {
		s += c.Scale
	}
	return s / float64(max(1, len(f.Comps)))
}

// MemoryBytes is the resident size of the fitted source: per member, an
// int32 permutation plus a quantile sketch plus the (loc, scale) pair.
// Compare with a stored collection's 8 bytes × members × elements; the
// sketchKnots budget keeps each fitted member strictly smaller whenever
// the tensor has more than 8 elements.
func (f *Fitted) MemoryBytes() int {
	b := 16 * len(f.Comps)
	for _, o := range f.Orders {
		b += 4 * len(o)
	}
	for _, s := range f.Sketches {
		b += 4 * len(s)
	}
	return b
}

// Validate checks structural invariants: a non-empty mixture with
// finite parameters, one non-decreasing finite sketch and one
// permutation of the shape's volume per member.
func (f *Fitted) Validate() error {
	if f == nil {
		return fmt.Errorf("noisedist: nil fitted distribution")
	}
	vol := tensor.Volume(f.Shape)
	if vol <= 0 {
		return fmt.Errorf("noisedist: invalid shape %v", f.Shape)
	}
	if len(f.Comps) == 0 {
		return fmt.Errorf("noisedist: no fitted components")
	}
	if len(f.Sketches) != len(f.Comps) || len(f.Orders) != len(f.Comps) {
		return fmt.Errorf("noisedist: %d components with %d sketches and %d orders",
			len(f.Comps), len(f.Sketches), len(f.Orders))
	}
	for i, c := range f.Comps {
		if !(c.Scale >= 0) || math.IsInf(c.Scale, 0) || math.IsNaN(c.Loc) || math.IsInf(c.Loc, 0) {
			return fmt.Errorf("noisedist: component %d has invalid parameters (loc %v, scale %v)", i, c.Loc, c.Scale)
		}
		if len(f.Sketches[i]) < 2 {
			return fmt.Errorf("noisedist: component %d sketch has %d knots", i, len(f.Sketches[i]))
		}
		for j, q := range f.Sketches[i] {
			if math.IsNaN(float64(q)) || math.IsInf(float64(q), 0) || (j > 0 && q < f.Sketches[i][j-1]) {
				return fmt.Errorf("noisedist: component %d sketch not a finite non-decreasing quantile function", i)
			}
		}
		if len(f.Orders[i]) != vol {
			return fmt.Errorf("noisedist: component %d order has %d entries for %d elements", i, len(f.Orders[i]), vol)
		}
		seen := make([]bool, vol)
		for _, o := range f.Orders[i] {
			if o < 0 || int(o) >= vol || seen[o] {
				return fmt.Errorf("noisedist: component %d order is not a permutation of [0,%d)", i, vol)
			}
			seen[o] = true
		}
	}
	return nil
}

// Sample draws one fresh noise tensor: pick a member uniformly, draw
// stratified uniforms through its quantile sketch, and scatter them
// through its order so the sampled tensor is rank-identical to the
// trained one. Deterministic for a given RNG state; the RNG is not
// goroutine-safe, so callers serialize access exactly as they do for
// Collection sampling.
func (f *Fitted) Sample(rng *tensor.RNG) *tensor.Tensor {
	out := tensor.New(f.Shape...)
	f.SampleInto(out, rng)
	return out
}

// SampleInto is Sample writing into a caller-owned tensor (scratch reuse
// for hot serving paths). dst must have the fitted shape's volume.
//
// Stratified uniforms u_j = (j + U_j)/n are born sorted, so no sort is
// needed and a draw is O(n): evaluate the inverse CDF at each u_j and
// scatter the j-th value to Orders[m][j]. Stratification also pins each
// draw's empirical distribution to the sketch far tighter than i.i.d.
// uniforms would, which is what closes the accuracy gap to stored replay.
func (f *Fitted) SampleInto(dst *tensor.Tensor, rng *tensor.RNG) {
	m := 0
	if len(f.Comps) > 1 {
		m = rng.Intn(len(f.Comps))
	}
	f.SampleMemberInto(m, dst, rng)
}

// SampleMemberInto draws from member m's distribution specifically,
// letting callers couple several draws to the same member — the
// multiplicative mode samples its (weight, noise) pair jointly, because
// training co-adapts them and a cross-member pair is meaningless.
func (f *Fitted) SampleMemberInto(m int, dst *tensor.Tensor, rng *tensor.RNG) {
	n := tensor.Volume(f.Shape)
	if dst.Len() != n {
		panic(fmt.Sprintf("noisedist: sample into %d elements, fitted over %d", dst.Len(), n))
	}
	if m < 0 || m >= len(f.Comps) {
		panic(fmt.Sprintf("noisedist: sample member %d of %d", m, len(f.Comps)))
	}
	sketch, order := f.Sketches[m], f.Orders[m]
	buf := dst.Data()
	inv := 1 / float64(n)
	for j, pos := range order {
		u := (float64(j) + rng.Float64()) * inv
		buf[pos] = quantile(sketch, u)
	}
}
