package cost

import (
	"math"
	"testing"

	"shredder/internal/model"
	"shredder/internal/tensor"
)

func TestProfileLeNetKnownValues(t *testing.T) {
	spec := model.LeNet()
	net := spec.Build(tensor.NewRNG(1))
	prof := Profile(net, []int{1, 28, 28})
	if len(prof) != net.Len() {
		t.Fatalf("profile has %d entries for %d layers", len(prof), net.Len())
	}
	// conv0: 6 out-channels × 24×24 positions × 1×5×5 window.
	if prof[0].MACs != 6*24*24*25 {
		t.Fatalf("conv0 MACs = %d", prof[0].MACs)
	}
	if prof[0].OutVals != 6*24*24 {
		t.Fatalf("conv0 OutVals = %d", prof[0].OutVals)
	}
	if prof[0].OutBytes != int64(6*24*24*BytesPerValue) {
		t.Fatalf("conv0 OutBytes = %d", prof[0].OutBytes)
	}
	// ReLU and pooling contribute no MACs in this model.
	if prof[1].MACs != 0 || prof[2].MACs != 0 {
		t.Fatal("activation/pool layers should have zero MACs")
	}
	// Final linear layer: 84×10.
	last := prof[len(prof)-1]
	if last.MACs != 84*10 {
		t.Fatalf("fc2 MACs = %d", last.MACs)
	}
}

func TestCutCostsEdgeMACsMonotonic(t *testing.T) {
	for _, spec := range model.All() {
		costs, err := CutCosts(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(costs) != len(spec.CutPoints) {
			t.Fatalf("%s: %d costs for %d cut points", spec.Name, len(costs), len(spec.CutPoints))
		}
		for i := 1; i < len(costs); i++ {
			if costs[i].EdgeMACs <= costs[i-1].EdgeMACs {
				t.Errorf("%s: edge MACs not increasing at %s", spec.Name, costs[i].Cut)
			}
		}
		for _, c := range costs {
			if c.CommBytes <= 0 || c.EdgeMACs <= 0 || c.Product <= 0 {
				t.Errorf("%s %s: non-positive cost %+v", spec.Name, c.Cut, c)
			}
		}
	}
}

// The paper picks SVHN conv6 because its activation is far smaller than
// earlier cuts: communication bytes at conv6 must undercut conv0.
func TestSvhnConv6CommunicationDrops(t *testing.T) {
	costs, err := CutCosts(model.SvhnNet())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CutCost{}
	for _, c := range costs {
		byName[c.Cut] = c
	}
	if byName["conv6"].CommBytes*10 > byName["conv0"].CommBytes {
		t.Fatalf("conv6 comm (%d) should be ≪ conv0 comm (%d)",
			byName["conv6"].CommBytes, byName["conv0"].CommBytes)
	}
}

func TestKiloMACxMB(t *testing.T) {
	// 2000 MACs × 3,000,000 bytes = 2 KMAC × 3 MB = 6.
	if got := KiloMACxMB(2000, 3_000_000); math.Abs(got-6) > 1e-12 {
		t.Fatalf("KiloMACxMB = %v", got)
	}
}

func TestProfileMatchesForwardShapes(t *testing.T) {
	// OutVals in the profile must equal the actual forward activation size.
	spec := model.CifarNet()
	net := spec.Build(tensor.NewRNG(2))
	prof := Profile(net, spec.Dataset.SampleShape())
	ds := spec.Dataset.Generate(1, 3)
	x := ds.Images
	var cur = x
	for i := 0; i < net.Len(); i++ {
		cur = net.Layer(i).Forward(cur, false)
		if cur.Len() != prof[i].OutVals {
			t.Fatalf("layer %s: forward size %d != profiled %d", net.Layer(i).Name(), cur.Len(), prof[i].OutVals)
		}
	}
}
