// Package cost implements the edge-device cost model of the paper's
// cutting-point analysis (§3.4, Figure 6): cumulative computation (MACs)
// of the layers run on the edge, communication (bytes of the transmitted
// activation), and the combined Computation × Communication cost of a
// cutting point.
package cost

import (
	"fmt"

	"shredder/internal/model"
	"shredder/internal/nn"
	"shredder/internal/tensor"
)

// BytesPerValue is the wire size of one activation element. The paper's
// communication axis is MB of activation data; we model float32 transport
// (4 bytes), the standard inference wire format.
const BytesPerValue = 4

// maccer is implemented by layers with a non-trivial MAC count.
type maccer interface {
	MACs(in []int) int64
}

// LayerCost is the cost contribution of a single layer.
type LayerCost struct {
	Name     string
	MACs     int64 // multiply-accumulates of this layer, per sample
	OutVals  int   // elements of this layer's output, per sample
	OutBytes int64 // wire size of this layer's output
}

// Profile computes per-layer costs for a network on the given per-sample
// input shape.
func Profile(net *nn.Sequential, in []int) []LayerCost {
	out := make([]LayerCost, net.Len())
	shape := append([]int(nil), in...)
	for i := 0; i < net.Len(); i++ {
		l := net.Layer(i)
		var macs int64
		if m, ok := l.(maccer); ok {
			macs = m.MACs(shape)
		}
		shape = l.OutShape(shape)
		vals := tensor.Volume(shape)
		out[i] = LayerCost{Name: l.Name(), MACs: macs, OutVals: vals, OutBytes: int64(vals) * BytesPerValue}
	}
	return out
}

// CutCost is the edge-side cost of choosing one cutting point.
type CutCost struct {
	// Cut is the paper-facing cut name (e.g. "conv6").
	Cut string
	// Layer is the Sequential layer after which the split happens.
	Layer string
	// EdgeMACs is the cumulative computation of all layers up to and
	// including the cut layer — monotonically increasing with depth.
	EdgeMACs int64
	// CommBytes is the wire size of the transmitted activation — not
	// monotonic, since layer outputs can grow or shrink.
	CommBytes int64
	// Product is the paper's total cost model, KiloMAC × MB.
	Product float64
}

// KiloMACxMB returns the paper's cost product for raw MACs and bytes.
func KiloMACxMB(macs, bytes int64) float64 {
	return float64(macs) / 1e3 * float64(bytes) / 1e6
}

// CutCosts evaluates every cutting point of a spec against a freshly built
// network (costs depend only on topology, not weights).
func CutCosts(spec model.Spec) ([]CutCost, error) {
	net := spec.Build(tensor.NewRNG(1))
	profile := Profile(net, spec.Dataset.SampleShape())
	out := make([]CutCost, 0, len(spec.CutPoints))
	for _, cp := range spec.CutPoints {
		idx := net.Index(cp.Layer)
		if idx < 0 {
			return nil, fmt.Errorf("cost: cut layer %q not in network %s", cp.Layer, spec.Name)
		}
		var macs int64
		for i := 0; i <= idx; i++ {
			macs += profile[i].MACs
		}
		cc := CutCost{
			Cut:       cp.Name,
			Layer:     cp.Layer,
			EdgeMACs:  macs,
			CommBytes: profile[idx].OutBytes,
		}
		cc.Product = KiloMACxMB(cc.EdgeMACs, cc.CommBytes)
		out = append(out, cc)
	}
	return out, nil
}
