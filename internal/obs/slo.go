package obs

import (
	"fmt"
	"sync"
	"time"
)

// The SLO engine: objectives over sliding-window aggregates, evaluated on
// a ticker, emitting firing/resolved transitions into an EventRing and
// mirroring their live state as slo.* metrics (so a merged fleet snapshot
// carries every backend's alert state for free).

// Aggregate names how an objective reduces its metric's window.
type Aggregate string

const (
	AggP50  Aggregate = "p50"  // windowed 50th-percentile (histograms)
	AggP95  Aggregate = "p95"  // windowed 95th-percentile (histograms)
	AggP99  Aggregate = "p99"  // windowed 99th-percentile (histograms)
	AggMean Aggregate = "mean" // windowed mean of observations (histograms)
	AggRate Aggregate = "rate" // events per second over the window (counters and histograms)
)

// Op compares the window value against the target.
type Op string

const (
	// OpAtMost breaches when value > target (latency-style ceilings).
	OpAtMost Op = "<="
	// OpAtLeast breaches when value < target (privacy-style floors).
	OpAtLeast Op = ">="
)

// Objective is one service-level objective over a registered metric's
// sliding window: "the windowed <Aggregate> of <Metric> must stay <Op>
// <Target>". The canonical pair this repo serves with:
//
//   - latency: windowed p99 of server.latency_seconds ≤ 5ms
//   - privacy: windowed mean of privacy.invivo ≥ the deployment's 1/SNR
//     target — the paper's privacy level as a *continuously held* budget
//     rather than a lifetime average.
type Objective struct {
	// Name identifies the objective in events and slo.<name>.* metrics
	// (e.g. "latency.p99", "privacy.invivo").
	Name string
	// Metric is the registered histogram (any aggregate) or counter
	// (AggRate only) the objective watches.
	Metric string
	// Aggregate reduces the metric's window to the judged value.
	Aggregate Aggregate
	// Op and Target define the objective: breach when the value is on the
	// wrong side of Target.
	Op     Op
	Target float64
	// MinCount suppresses judgment until the window holds at least this
	// many observations (histograms only; values < 1 behave as 1). An
	// empty window proves nothing — especially for a privacy floor, where
	// "no samples" must not read as "private".
	MinCount int64
	// Labels travel verbatim on every event the objective emits.
	Labels map[string]string
}

func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("obs: objective needs a name")
	}
	if o.Metric == "" {
		return fmt.Errorf("obs: objective %s needs a metric", o.Name)
	}
	switch o.Aggregate {
	case AggP50, AggP95, AggP99, AggMean, AggRate:
	default:
		return fmt.Errorf("obs: objective %s: unknown aggregate %q (want p50, p95, p99, mean, or rate)", o.Name, o.Aggregate)
	}
	switch o.Op {
	case OpAtMost, OpAtLeast:
	default:
		return fmt.Errorf("obs: objective %s: unknown op %q (want %q or %q)", o.Name, o.Op, OpAtMost, OpAtLeast)
	}
	return nil
}

// value reduces a window snapshot to the objective's judged value; ok is
// false when the metric is absent from the window or below MinCount.
func (o Objective) value(ws *WindowSnapshot) (v float64, ok bool) {
	if ws == nil {
		return 0, false
	}
	if h, found := ws.Histograms[o.Metric]; found {
		min := o.MinCount
		if min < 1 {
			min = 1
		}
		if h.Count < min {
			return 0, false
		}
		switch o.Aggregate {
		case AggP50:
			return h.P50, true
		case AggP95:
			return h.P95, true
		case AggP99:
			return h.P99, true
		case AggMean:
			return h.Mean, true
		case AggRate:
			return h.Rate, true
		}
	}
	if c, found := ws.Counters[o.Metric]; found && o.Aggregate == AggRate {
		return c.Rate, true
	}
	return 0, false
}

// breached reports whether v is on the wrong side of the target.
func (o Objective) breached(v float64) bool {
	if o.Op == OpAtLeast {
		return v < o.Target
	}
	return v > o.Target
}

// SLO evaluates a set of objectives against a sliding window on a ticker.
// Each evaluation advances the window, reduces every objective, and emits
// an Event on each firing/resolved transition. Live state is mirrored in
// the window's registry:
//
//	slo.evals                 counter, evaluation passes
//	slo.events                counter, emitted transitions
//	slo.<name>.firing         gauge, 1 while breaching
//	slo.<name>.value          gauge, last judged window value
//
// All methods are safe for concurrent use and no-ops on a nil receiver.
type SLO struct {
	win        *Windows
	events     *EventRing
	objectives []Objective

	mu     sync.Mutex
	firing []bool

	evals  *Counter
	emits  *Counter
	fireG  []*Gauge
	valueG []*Gauge

	stopOnce sync.Once
	stopCh   chan struct{}
}

// NewSLO builds an engine over win's registry, emitting transitions into
// events (a nil ring is replaced by a fresh 256-event ring; use Events to
// retrieve it). Returns an error on a nil window or an invalid objective.
func NewSLO(win *Windows, events *EventRing, objectives ...Objective) (*SLO, error) {
	if win == nil {
		return nil, fmt.Errorf("obs: SLO needs a window")
	}
	if len(objectives) == 0 {
		return nil, fmt.Errorf("obs: SLO needs at least one objective")
	}
	seen := map[string]bool{}
	for _, o := range objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("obs: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
	}
	if events == nil {
		events = NewEventRing(256)
	}
	s := &SLO{
		win:        win,
		events:     events,
		objectives: objectives,
		firing:     make([]bool, len(objectives)),
		evals:      win.reg.Counter("slo.evals"),
		emits:      win.reg.Counter("slo.events"),
		fireG:      make([]*Gauge, len(objectives)),
		valueG:     make([]*Gauge, len(objectives)),
		stopCh:     make(chan struct{}),
	}
	for i, o := range objectives {
		s.fireG[i] = win.reg.Gauge("slo." + o.Name + ".firing")
		s.valueG[i] = win.reg.Gauge("slo." + o.Name + ".value")
		win.reg.Gauge("slo." + o.Name + ".target").Set(o.Target)
	}
	return s, nil
}

// Events returns the ring transitions are emitted into (nil on a nil SLO).
func (s *SLO) Events() *EventRing {
	if s == nil {
		return nil
	}
	return s.events
}

// Objectives returns the configured objectives (nil on a nil SLO).
func (s *SLO) Objectives() []Objective {
	if s == nil {
		return nil
	}
	return s.objectives
}

// Firing returns the names of currently breaching objectives.
func (s *SLO) Firing() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for i, f := range s.firing {
		if f {
			out = append(out, s.objectives[i].Name)
		}
	}
	return out
}

// Evaluate advances the window to now and judges every objective,
// appending an Event per state transition. It returns the emitted
// transitions (usually none). Nil-safe.
func (s *SLO) Evaluate(now time.Time) []Event {
	if s == nil {
		return nil
	}
	ws := s.win.Advance(now)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evals.Inc()
	var emitted []Event
	for i, o := range s.objectives {
		v, ok := o.value(ws)
		if !ok {
			// No (or not enough) data: hold the previous verdict rather
			// than flapping — a quiet window neither fires nor resolves.
			continue
		}
		s.valueG[i].Set(v)
		breach := o.breached(v)
		if breach == s.firing[i] {
			continue
		}
		s.firing[i] = breach
		state := StateResolved
		g := 0.0
		if breach {
			state, g = StateFiring, 1
		}
		s.fireG[i].Set(g)
		e := s.events.Append(Event{
			UnixNanos: now.UnixNano(),
			Name:      o.Name,
			State:     state,
			Value:     v,
			Target:    o.Target,
			Op:        o.Op,
			Window:    ws.Seconds,
			Labels:    o.Labels,
		})
		s.emits.Inc()
		emitted = append(emitted, e)
	}
	return emitted
}

// Start evaluates on the given cadence (0 = the window's bucket duration)
// from a background goroutine until the returned stop function is called
// (idempotent). Nil-safe.
func (s *SLO) Start(interval time.Duration) (stop func()) {
	if s == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = s.win.Bucket()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.Evaluate(now)
			case <-s.stopCh:
				return
			}
		}
	}()
	return func() {
		s.stopOnce.Do(func() { close(s.stopCh) })
		<-done
	}
}
