package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Snapshot merging: one debug endpoint re-exporting the metrics of a whole
// fleet. A gateway (or any aggregator) collects Snapshot values from N
// backends — its own registry, in-process registries, or remote
// /debug/metrics endpoints — and MergeSnapshot folds each one into a single
// Snapshot under a per-source label prefix, so `backend.a.server.requests`
// and `backend.b.server.requests` sit side by side in one payload and
// nothing is summed away.

// SnapshotSource is one labelled metrics feed for a merged debug endpoint:
// Fetch produces the source's current Snapshot (typically a registry read
// or an HTTP pull from a backend's /debug/metrics). A failing Fetch is
// reported in the merged payload as a `merge.failed.<label>` counter rather
// than failing the whole merge — a dead backend must not blind the fleet
// view.
type SnapshotSource struct {
	Label string
	Fetch func() (Snapshot, error)
}

// MergeSnapshot copies every metric of src into dst under the name prefix
// "<label>." — counters, gauges, and histograms keep their values and
// bucket layout. Metrics are never aggregated across sources: the label
// keeps each backend's numbers distinguishable, which is what a fleet
// operator needs to spot the one slow or failing backend.
func MergeSnapshot(dst *Snapshot, label string, src Snapshot) {
	prefix := label + "."
	for name, v := range src.Counters {
		dst.Counters[prefix+name] = v
	}
	for name, v := range src.Gauges {
		dst.Gauges[prefix+name] = v
	}
	for name, h := range src.Histograms {
		dst.Histograms[prefix+name] = h
	}
	if src.Window == nil {
		return
	}
	// A source's windowed series fold in under the same prefix. Covered
	// spans can differ per source (a just-restarted backend's window is
	// still filling), so each source's span lands as a prefixed gauge
	// rather than overwriting the merged window's own.
	if dst.Window == nil {
		dst.Window = &WindowSnapshot{
			Counters:   map[string]WindowCounter{},
			Histograms: map[string]WindowHistogram{},
		}
	}
	for name, v := range src.Window.Counters {
		dst.Window.Counters[prefix+name] = v
	}
	for name, h := range src.Window.Histograms {
		dst.Window.Histograms[prefix+name] = h
	}
	dst.Gauges[prefix+"window.seconds"] = src.Window.Seconds
}

// HTTPSnapshotSource builds a SnapshotSource that pulls a remote
// /debug/metrics endpoint (any URL serving a JSON Snapshot) with a short
// timeout, so one slow backend cannot stall the merged view for long.
func HTTPSnapshotSource(label, url string) SnapshotSource {
	client := &http.Client{Timeout: 2 * time.Second}
	return SnapshotSource{Label: label, Fetch: func() (Snapshot, error) {
		resp, err := client.Get(url)
		if err != nil {
			return Snapshot{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return Snapshot{}, fmt.Errorf("obs: %s: status %s", url, resp.Status)
		}
		var s Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			return Snapshot{}, err
		}
		return s, nil
	}}
}

// MergedSnapshot takes the base registry's snapshot and folds every
// source's snapshot into it under the source's label. Fetch errors become
// `merge.failed.<label>` counters in the result.
func MergedSnapshot(base *Registry, sources []SnapshotSource) Snapshot {
	snap := base.Snapshot()
	for _, src := range sources {
		if src.Fetch == nil {
			continue
		}
		s, err := src.Fetch()
		if err != nil {
			snap.Counters["merge.failed."+src.Label] = 1
			continue
		}
		MergeSnapshot(&snap, src.Label, s)
	}
	return snap
}
