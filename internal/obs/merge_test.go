package obs

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"testing"
)

// TestMergeSnapshotPrefixesEverything merges two source snapshots into a
// base and checks every metric class survives under its label, values
// intact and unsummed.
func TestMergeSnapshotPrefixesEverything(t *testing.T) {
	base := NewRegistry()
	base.Counter("gateway.requests").Add(7)

	a := NewRegistry()
	a.Counter("server.requests").Add(3)
	a.Gauge("server.batch.occupancy").Set(2.5)
	a.Histogram("server.latency_seconds").Observe(0.001)
	b := NewRegistry()
	b.Counter("server.requests").Add(11)

	snap := MergedSnapshot(base, []SnapshotSource{
		{Label: "backend.a", Fetch: func() (Snapshot, error) { return a.Snapshot(), nil }},
		{Label: "backend.b", Fetch: func() (Snapshot, error) { return b.Snapshot(), nil }},
	})
	if snap.Counters["gateway.requests"] != 7 {
		t.Fatalf("base metric lost: %+v", snap.Counters)
	}
	if snap.Counters["backend.a.server.requests"] != 3 || snap.Counters["backend.b.server.requests"] != 11 {
		t.Fatalf("per-backend counters wrong: %+v", snap.Counters)
	}
	if snap.Gauges["backend.a.server.batch.occupancy"] != 2.5 {
		t.Fatalf("gauge not merged: %+v", snap.Gauges)
	}
	if h := snap.Histograms["backend.a.server.latency_seconds"]; h.Count != 1 {
		t.Fatalf("histogram not merged: %+v", snap.Histograms)
	}
}

// TestMergedSnapshotSurvivesFailedSource checks a dead backend turns into a
// merge.failed counter instead of failing the merge.
func TestMergedSnapshotSurvivesFailedSource(t *testing.T) {
	live := NewRegistry()
	live.Counter("server.requests").Add(1)
	snap := MergedSnapshot(NewRegistry(), []SnapshotSource{
		{Label: "dead", Fetch: func() (Snapshot, error) { return Snapshot{}, errors.New("down") }},
		{Label: "live", Fetch: func() (Snapshot, error) { return live.Snapshot(), nil }},
		{Label: "nilfetch"},
	})
	if snap.Counters["merge.failed.dead"] != 1 {
		t.Fatalf("failed source not reported: %+v", snap.Counters)
	}
	if snap.Counters["live.server.requests"] != 1 {
		t.Fatalf("live source lost behind the dead one: %+v", snap.Counters)
	}
}

// TestDebugEndpointMergesSources serves a Debug with Sources and checks
// /debug/metrics carries the merged, labelled payload over HTTP.
func TestDebugEndpointMergesSources(t *testing.T) {
	own := NewRegistry()
	own.Counter("pool.requests").Add(2)
	backend := NewRegistry()
	backend.Counter("server.requests").Add(9)

	d, err := Debug{
		Metrics: own,
		Sources: []SnapshotSource{
			{Label: "backend.0", Fetch: func() (Snapshot, error) { return backend.Snapshot(), nil }},
		},
	}.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.Addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pool.requests"] != 2 || snap.Counters["backend.0.server.requests"] != 9 {
		t.Fatalf("merged endpoint payload: %+v", snap.Counters)
	}
}

// TestMergeSnapshotEmptySource: merging an empty snapshot (a backend that
// has registered nothing yet) must leave the destination untouched — no
// phantom prefixed entries, no panics on nil maps inside the source.
func TestMergeSnapshotEmptySource(t *testing.T) {
	base := NewRegistry()
	base.Counter("gateway.requests").Add(4)
	dst := base.Snapshot()
	before := len(dst.Counters) + len(dst.Gauges) + len(dst.Histograms)

	MergeSnapshot(&dst, "idle", Snapshot{}) // zero-value source: nil maps
	MergeSnapshot(&dst, "fresh", NewRegistry().Snapshot())

	after := len(dst.Counters) + len(dst.Gauges) + len(dst.Histograms)
	if after != before {
		t.Fatalf("empty sources grew the snapshot: %d → %d entries", before, after)
	}
	if dst.Counters["gateway.requests"] != 4 {
		t.Fatalf("base metric disturbed: %+v", dst.Counters)
	}
}

// TestMergeSnapshotDuplicateLabel pins the collision semantics: two merges
// under the same label overwrite key-by-key (last write wins), they do not
// sum. Fleet configs that accidentally label two backends identically lose
// one backend's numbers — visibly documented here rather than silently
// relied on.
func TestMergeSnapshotDuplicateLabel(t *testing.T) {
	a := NewRegistry()
	a.Counter("server.requests").Add(3)
	a.Gauge("server.queue").Set(1)
	b := NewRegistry()
	b.Counter("server.requests").Add(11)

	dst := NewRegistry().Snapshot()
	MergeSnapshot(&dst, "backend", a.Snapshot())
	MergeSnapshot(&dst, "backend", b.Snapshot())

	if got := dst.Counters["backend.server.requests"]; got != 11 {
		t.Fatalf("duplicate label should last-write-win, not sum: got %d, want 11", got)
	}
	// b never registered the gauge, so a's survives — merging is per-key,
	// not per-source replacement.
	if got := dst.Gauges["backend.server.queue"]; got != 1 {
		t.Fatalf("unrelated key from the first merge lost: %v", got)
	}
}

// TestMergeSnapshotOverflowBucket: a histogram whose observations exceed
// every finite bound keeps its +Inf overflow bucket through a merge and a
// JSON round trip (the wire format /debug/metrics speaks), even when the
// two sources disagree on whether the overflow bucket is populated.
func TestMergeSnapshotOverflowBucket(t *testing.T) {
	hot := NewRegistry()
	hot.Histogram("latency", 0.01, 0.1).Observe(5) // above every bound → +Inf bucket
	cold := NewRegistry()
	cold.Histogram("latency", 0.01, 0.1).Observe(0.005) // first bucket only

	dst := NewRegistry().Snapshot()
	MergeSnapshot(&dst, "hot", hot.Snapshot())
	MergeSnapshot(&dst, "cold", cold.Snapshot())

	raw, err := json.Marshal(dst)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	hotH := back.Histograms["hot.latency"]
	if hotH.Count != 1 || len(hotH.Buckets) != 1 {
		t.Fatalf("hot histogram malformed after round trip: %+v", hotH)
	}
	if !math.IsInf(hotH.Buckets[0].Le, 1) {
		t.Fatalf("overflow bucket edge decoded as %v, want +Inf", hotH.Buckets[0].Le)
	}
	coldH := back.Histograms["cold.latency"]
	if len(coldH.Buckets) != 1 || coldH.Buckets[0].Le != 0.01 {
		t.Fatalf("cold histogram's finite bucket lost: %+v", coldH)
	}
	for _, b := range coldH.Buckets {
		if math.IsInf(b.Le, 1) {
			t.Fatal("cold histogram grew a phantom +Inf bucket through the merge")
		}
	}
}
