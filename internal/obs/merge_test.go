package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"
)

// TestMergeSnapshotPrefixesEverything merges two source snapshots into a
// base and checks every metric class survives under its label, values
// intact and unsummed.
func TestMergeSnapshotPrefixesEverything(t *testing.T) {
	base := NewRegistry()
	base.Counter("gateway.requests").Add(7)

	a := NewRegistry()
	a.Counter("server.requests").Add(3)
	a.Gauge("server.batch.occupancy").Set(2.5)
	a.Histogram("server.latency_seconds").Observe(0.001)
	b := NewRegistry()
	b.Counter("server.requests").Add(11)

	snap := MergedSnapshot(base, []SnapshotSource{
		{Label: "backend.a", Fetch: func() (Snapshot, error) { return a.Snapshot(), nil }},
		{Label: "backend.b", Fetch: func() (Snapshot, error) { return b.Snapshot(), nil }},
	})
	if snap.Counters["gateway.requests"] != 7 {
		t.Fatalf("base metric lost: %+v", snap.Counters)
	}
	if snap.Counters["backend.a.server.requests"] != 3 || snap.Counters["backend.b.server.requests"] != 11 {
		t.Fatalf("per-backend counters wrong: %+v", snap.Counters)
	}
	if snap.Gauges["backend.a.server.batch.occupancy"] != 2.5 {
		t.Fatalf("gauge not merged: %+v", snap.Gauges)
	}
	if h := snap.Histograms["backend.a.server.latency_seconds"]; h.Count != 1 {
		t.Fatalf("histogram not merged: %+v", snap.Histograms)
	}
}

// TestMergedSnapshotSurvivesFailedSource checks a dead backend turns into a
// merge.failed counter instead of failing the merge.
func TestMergedSnapshotSurvivesFailedSource(t *testing.T) {
	live := NewRegistry()
	live.Counter("server.requests").Add(1)
	snap := MergedSnapshot(NewRegistry(), []SnapshotSource{
		{Label: "dead", Fetch: func() (Snapshot, error) { return Snapshot{}, errors.New("down") }},
		{Label: "live", Fetch: func() (Snapshot, error) { return live.Snapshot(), nil }},
		{Label: "nilfetch"},
	})
	if snap.Counters["merge.failed.dead"] != 1 {
		t.Fatalf("failed source not reported: %+v", snap.Counters)
	}
	if snap.Counters["live.server.requests"] != 1 {
		t.Fatalf("live source lost behind the dead one: %+v", snap.Counters)
	}
}

// TestDebugEndpointMergesSources serves a Debug with Sources and checks
// /debug/metrics carries the merged, labelled payload over HTTP.
func TestDebugEndpointMergesSources(t *testing.T) {
	own := NewRegistry()
	own.Counter("pool.requests").Add(2)
	backend := NewRegistry()
	backend.Counter("server.requests").Add(9)

	d, err := Debug{
		Metrics: own,
		Sources: []SnapshotSource{
			{Label: "backend.0", Fetch: func() (Snapshot, error) { return backend.Snapshot(), nil }},
		},
	}.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.Addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pool.requests"] != 2 || snap.Counters["backend.0.server.requests"] != 9 {
		t.Fatalf("merged endpoint payload: %+v", snap.Counters)
	}
}
