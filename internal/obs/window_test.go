package obs

import (
	"math"
	"testing"
	"time"
)

// TestWindowCounterRates: deltas and rates come from the ring boundaries,
// and observations age out once the ring rotates past them.
func TestWindowCounterRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("server.requests")
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 4})

	t0 := time.Unix(1000, 0)
	w.Advance(t0)
	c.Add(10)
	ws := w.Advance(t0.Add(2 * time.Second))
	if got := ws.Counters["server.requests"]; got.Delta != 10 {
		t.Fatalf("window delta = %+v, want 10", got)
	}
	if got := ws.Counters["server.requests"].Rate; math.Abs(got-5) > 1e-9 {
		t.Fatalf("window rate = %v, want 5/s", got)
	}
	if ws.Seconds != 2 {
		t.Fatalf("covered span = %v, want 2s", ws.Seconds)
	}

	// Advance far enough that the ring rotates the burst out: with 4
	// buckets of 1s, after 5 more one-second ticks with no traffic the
	// oldest retained sample post-dates the burst and the delta drops to 0.
	at := t0.Add(2 * time.Second)
	var last *WindowSnapshot
	for i := 0; i < 5; i++ {
		at = at.Add(time.Second)
		last = w.Advance(at)
	}
	if got := last.Counters["server.requests"]; got.Delta != 0 {
		t.Fatalf("burst should have aged out of the window: %+v", got)
	}
	if v := reg.Snapshot().Counters["server.requests"]; v != 10 {
		t.Fatalf("cumulative value must be untouched by windowing: %d", v)
	}
}

// TestWindowSubBucketAdvance: calling Advance faster than the bucket
// duration refreshes the leading edge without rotating the ring, so the
// covered span keeps growing toward the configured window.
func TestWindowSubBucketAdvance(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 3})
	t0 := time.Unix(0, 0)
	w.Advance(t0)
	for i := 1; i <= 10; i++ {
		c.Inc()
		ws := w.Advance(t0.Add(time.Duration(i) * 100 * time.Millisecond))
		if ws.Counters["x"].Delta != int64(i) {
			t.Fatalf("tick %d: delta %d, want %d (sub-bucket ticks must not evict)", i, ws.Counters["x"].Delta, i)
		}
	}
}

// TestWindowHistogramQuantiles: windowed quantiles reflect only the
// window's observations, not lifetime history.
func TestWindowHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", 0.001, 0.01, 0.1, 1)
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 4})
	t0 := time.Unix(0, 0)

	// Lifetime history: a thousand fast observations.
	for i := 0; i < 1000; i++ {
		h.Observe(0.0005)
	}
	w.Advance(t0)

	// Window: a hundred slow ones.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	ws := w.Advance(t0.Add(time.Second))
	wh := ws.Histograms["lat"]
	if wh.Count != 100 {
		t.Fatalf("window count = %d, want 100", wh.Count)
	}
	if wh.P50 < 0.1 || wh.P50 > 1 {
		t.Fatalf("window p50 = %v should sit in the slow bucket (0.1, 1]", wh.P50)
	}
	if math.Abs(wh.Mean-0.5) > 1e-9 {
		t.Fatalf("window mean = %v, want 0.5", wh.Mean)
	}
	// The cumulative quantile still reflects the fast lifetime majority.
	if p50 := h.Quantile(0.5); p50 > 0.001 {
		t.Fatalf("cumulative p50 = %v should stay in the fast bucket", p50)
	}
}

// TestWindowOverflowBucket: observations past the last bound land in the
// +Inf bucket and windowed quantiles clamp to the last finite edge, like
// the cumulative path.
func TestWindowOverflowBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", 0.001, 0.01)
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 2})
	h.Observe(0.005) // lifetime observation that keeps a finite bucket edge visible
	t0 := time.Unix(0, 0)
	w.Advance(t0)
	for i := 0; i < 10; i++ {
		h.Observe(99) // way past the last bound
	}
	ws := w.Advance(t0.Add(time.Second))
	wh := ws.Histograms["lat"]
	if wh.Count != 10 {
		t.Fatalf("window count = %d, want 10", wh.Count)
	}
	if wh.P99 != 0.01 {
		t.Fatalf("overflow quantile should clamp to last finite bound: %v", wh.P99)
	}
}

// TestWindowMidRegistration: a metric registered mid-window baselines at
// zero instead of being dropped.
func TestWindowMidRegistration(t *testing.T) {
	reg := NewRegistry()
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 4})
	t0 := time.Unix(0, 0)
	w.Advance(t0)
	reg.Counter("late").Add(7)
	ws := w.Advance(t0.Add(time.Second))
	if got := ws.Counters["late"]; got.Delta != 7 {
		t.Fatalf("mid-window registration: %+v, want delta 7", got)
	}
}

// TestWindowNilSafety: nil windows are valid disabled windows.
func TestWindowNilSafety(t *testing.T) {
	var w *Windows
	if w != NewWindows(nil, WindowOptions{}) {
		t.Fatal("NewWindows(nil) should be nil")
	}
	if ws := w.Advance(time.Now()); ws != nil {
		t.Fatalf("nil window Advance: %+v", ws)
	}
	if ws := w.Snapshot(); ws != nil {
		t.Fatalf("nil window Snapshot: %+v", ws)
	}
	stop := w.Start()
	stop()
	if w.Bucket() != 0 {
		t.Fatal("nil window Bucket should be 0")
	}
}

// TestWindowSnapshotPureRead: Snapshot computes the live window without
// rotating the ring.
func TestWindowSnapshotPureRead(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 2})
	if w.Snapshot() != nil {
		t.Fatal("window Snapshot before first Advance should be nil")
	}
	w.Advance(time.Unix(0, 0))
	c.Add(3)
	for i := 0; i < 5; i++ {
		if ws := w.Snapshot(); ws.Counters["x"].Delta != 3 {
			t.Fatalf("read %d: %+v", i, ws.Counters["x"])
		}
	}
}

// TestWindowStartStop: the background ticker rotates the ring (old
// observations age out without any explicit Advance call) and stop is
// idempotent.
func TestWindowStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	w := NewWindows(reg, WindowOptions{Bucket: 5 * time.Millisecond, Buckets: 2})
	w.Advance(time.Now()) // baseline before the burst
	c.Add(1)
	if ws := w.Snapshot(); ws.Counters["x"].Delta != 1 {
		t.Fatalf("burst not visible: %+v", ws.Counters["x"])
	}
	stop := w.Start()
	defer stop()
	// Only the ticker rotates the ring here; once it has pushed enough
	// boundaries the burst ages out and the windowed delta returns to 0.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ws := w.Snapshot(); ws.Counters["x"].Delta == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker never rotated the burst out of the window")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

// TestMergeSnapshotWindow: a source's windowed series fold in under its
// label prefix, with the covered span surfaced as a prefixed gauge.
func TestMergeSnapshotWindow(t *testing.T) {
	src := Snapshot{
		Counters: map[string]int64{"server.requests": 100},
		Gauges:   map[string]float64{},
		Window: &WindowSnapshot{
			Seconds:    30,
			Counters:   map[string]WindowCounter{"server.requests": {Delta: 10, Rate: 0.333}},
			Histograms: map[string]WindowHistogram{"server.latency_seconds": {Count: 10, P99: 0.004}},
		},
	}
	dst := NewRegistry().Snapshot()
	MergeSnapshot(&dst, "backend.a", src)
	if got := dst.Window.Counters["backend.a.server.requests"]; got.Delta != 10 {
		t.Fatalf("merged window counter: %+v", got)
	}
	if got := dst.Window.Histograms["backend.a.server.latency_seconds"]; got.P99 != 0.004 {
		t.Fatalf("merged window histogram: %+v", got)
	}
	if got := dst.Gauges["backend.a.window.seconds"]; got != 30 {
		t.Fatalf("merged window span gauge: %v", got)
	}
}
