package obs

import (
	"runtime"
	"time"
)

// Process-level runtime gauges, refreshed lazily via an OnSnapshot hook:
// nobody polls, yet every consumer of the registry — debug scrapes, window
// ticks, SLO evaluations — sees current values.
//
//	process.uptime_seconds           seconds since registration
//	process.goroutines               live goroutine count
//	process.heap_bytes               bytes of allocated heap objects
//	process.gc_pause_total_seconds   cumulative stop-the-world pause time
//	process.gc_cycles                completed GC cycles

// processHook names the OnSnapshot hook RegisterProcessMetrics installs.
const processHook = "process"

// RegisterProcessMetrics installs the process.* runtime gauges on reg.
// Idempotent (a second call on the same registry is a no-op) and nil-safe.
func RegisterProcessMetrics(reg *Registry) {
	if reg == nil || reg.HasSnapshotHook(processHook) {
		return
	}
	start := time.Now()
	uptime := reg.Gauge("process.uptime_seconds")
	goroutines := reg.Gauge("process.goroutines")
	heap := reg.Gauge("process.heap_bytes")
	gcPause := reg.Gauge("process.gc_pause_total_seconds")
	gcCycles := reg.Gauge("process.gc_cycles")
	reg.OnSnapshot(processHook, func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		uptime.Set(time.Since(start).Seconds())
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(ms.HeapAlloc))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcCycles.Set(float64(ms.NumGC))
	})
}
