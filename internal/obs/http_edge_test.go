package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDebugContentTypes: every built-in endpoint pins an explicit
// Content-Type.
func TestDebugContentTypes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Inc()
	d := Debug{
		Metrics: reg,
		Spans:   NewSpanRing(4),
		Profile: NewProfiler(reg),
		Events:  NewEventRing(4),
	}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		want string
	}{
		{"/debug/metrics", "application/json"},
		{"/debug/metrics?format=prom", "text/plain; version=0.0.4; charset=utf-8"},
		{"/debug/spans", "application/json"},
		{"/debug/spans?join=1", "application/json"},
		{"/debug/profile", "application/json"},
		{"/debug/profile?format=csv", "text/csv; charset=utf-8"},
		{"/debug/profile?format=text", "text/plain; charset=utf-8"},
		{"/debug/events", "application/json"},
		{"/debug/events?after=0", "application/json"},
		{"/debug/vars", "application/json; charset=utf-8"},
		{"/", "text/plain; charset=utf-8"},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %s", tc.path, resp.Status)
			continue
		}
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Errorf("GET %s: Content-Type %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestDebugNilFieldsServeEmpty: a Debug with every field nil serves empty
// documents on each endpoint instead of crashing.
func TestDebugNilFieldsServeEmpty(t *testing.T) {
	ts := httptest.NewServer(Debug{}.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		want string // exact body for JSON endpoints, prefix "" = any
	}{
		{"/debug/metrics?format=prom", ""}, // empty exposition is valid
		{"/debug/spans", "[]"},
		{"/debug/spans?join=1", "[]"},
		{"/debug/profile", "[]"},
		{"/debug/events", "[]"},
		{"/debug/events?after=3", "[]"},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %s", tc.path, resp.Status)
			continue
		}
		if got := strings.TrimSpace(string(body)); got != tc.want {
			t.Errorf("GET %s: body %q, want %q", tc.path, got, tc.want)
		}
	}

	// /debug/metrics on a nil registry still returns a well-formed (empty)
	// snapshot document.
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Counters) != 0 || snap.Window != nil {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
}

// TestDebugExtraCollisionPanics: mounting an Extra handler on a built-in
// route is a programming error surfaced as a panic with a clear message.
func TestDebugExtraCollisionPanics(t *testing.T) {
	d := Debug{Extra: map[string]http.Handler{
		"/debug/metrics": http.NotFoundHandler(),
	}}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("colliding Extra pattern did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "/debug/metrics") || !strings.Contains(msg, "collides") {
			t.Fatalf("panic message %v should name the colliding pattern", r)
		}
	}()
	d.Handler()
}

// TestDebugExtraMounts: non-colliding Extra patterns serve and appear on
// the index page.
func TestDebugExtraMounts(t *testing.T) {
	d := Debug{Extra: map[string]http.Handler{
		"/debug/audit": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("audit ok"))
		}),
	}}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "audit ok" {
		t.Fatalf("extra handler body %q", body)
	}
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/debug/audit") {
		t.Fatal("index page should list Extra mounts")
	}
}

// TestDebugProcessGauges: attaching a registry to the debug surface
// registers the process.* runtime gauges, refreshed on every scrape.
func TestDebugProcessGauges(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Debug{Metrics: reg}.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, name := range []string{
		"process.uptime_seconds", "process.goroutines", "process.heap_bytes",
		"process.gc_pause_total_seconds", "process.gc_cycles",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("missing runtime gauge %s", name)
		}
	}
	if snap.Gauges["process.goroutines"] < 1 {
		t.Fatalf("goroutines gauge = %v", snap.Gauges["process.goroutines"])
	}
	if snap.Gauges["process.heap_bytes"] <= 0 {
		t.Fatalf("heap gauge = %v", snap.Gauges["process.heap_bytes"])
	}
	// Registering twice must not double-install the hook.
	RegisterProcessMetrics(reg)
	RegisterProcessMetrics(reg)
	if !reg.HasSnapshotHook("process") {
		t.Fatal("process hook missing")
	}
	RegisterProcessMetrics(nil) // nil-safe
}

// TestDebugEventsEndpoint: the ring serves JSON events, ?after=seq serves
// the increment, and EventSources fan the stream out.
func TestDebugEventsEndpoint(t *testing.T) {
	ring := NewEventRing(8)
	ring.Append(Event{UnixNanos: 1, Name: "a", State: StateFiring})
	ring.Append(Event{UnixNanos: 2, Name: "b", State: StateResolved})
	ts := httptest.NewServer(Debug{Events: ring}.Handler())
	defer ts.Close()

	getEvents := func(url string) []Event {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []Event
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if out := getEvents(ts.URL + "/debug/events"); len(out) != 2 || out[0].Name != "a" {
		t.Fatalf("events = %+v", out)
	}
	if out := getEvents(ts.URL + "/debug/events?after=1"); len(out) != 1 || out[0].Name != "b" {
		t.Fatalf("events?after=1 = %+v", out)
	}

	// A gateway surface: local ring plus a backend's event feed, served
	// merged — including a backend fetched over HTTP.
	merged := httptest.NewServer(Debug{
		Events: ring,
		EventSources: []EventSource{
			HTTPEventSource("backend.a", ts.URL+"/debug/events"),
		},
	}.Handler())
	defer merged.Close()
	out := getEvents(merged.URL + "/debug/events")
	if len(out) != 4 {
		t.Fatalf("merged events = %+v", out)
	}
	labelled := 0
	for _, e := range out {
		if e.Source == "backend.a" {
			labelled++
		}
	}
	if labelled != 2 {
		t.Fatalf("want 2 backend.a-labelled events, got %d in %+v", labelled, out)
	}
}

// TestDebugMetricsWindowAttached: a Debug with Windows attached includes
// the window field in the JSON payload, advanced by the scrape itself.
func TestDebugMetricsWindowAttached(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("server.requests")
	w := NewWindows(reg, WindowOptions{Bucket: time.Millisecond, Buckets: 4})
	w.Advance(time.Now().Add(-10 * time.Millisecond))
	c.Add(5)
	ts := httptest.NewServer(Debug{Metrics: reg, Windows: w}.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Window == nil {
		t.Fatal("scrape should attach the window")
	}
	if got := snap.Window.Counters["server.requests"]; got.Delta != 5 {
		t.Fatalf("window delta over scrape = %+v", got)
	}
}
