package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsNoOp pins the "observability disabled" contract: a nil
// registry hands out nil handles and every operation on them is a safe
// no-op — this is what lets instrumented hot paths skip nil checks.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metric handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	snap := r.Snapshot()
	if snap.Counters == nil || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
	var ring *SpanRing
	ring.Record(Span{Name: "x"})
	if got := ring.Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot: %v", got)
	}
	var hook Hook
	hook.Emit(TrainingEvent{}) // must not panic
}

// TestCounterGaugeConcurrent hammers one counter and gauge from many
// goroutines (run under -race) and checks the counter total is exact.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("level")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter lost updates: %d != %d", c.Value(), workers*per)
	}
	if v := g.Value(); v < 0 || v >= workers {
		t.Fatalf("gauge holds impossible value %v", v)
	}
	if again := r.Counter("hits"); again != c {
		t.Fatal("re-registration must return the same counter")
	}
}

// TestHistogramQuantiles observes a known uniform distribution and checks
// the interpolated quantiles land in the right buckets.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i%10) + 0.5) // uniform over [0.5, 9.5]
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5000) > 1 {
		t.Fatalf("sum %v, want ~5000", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 4 || p50 > 6 {
		t.Fatalf("p50 %v outside [4, 6]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 9 || p99 > 10 {
		t.Fatalf("p99 %v outside [9, 10]", p99)
	}
	if p95 := h.Quantile(0.95); p95 > p99 || p50 > p95 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// Overflow values clamp to the last bound instead of returning +Inf.
	h2 := r.Histogram("overflow", 1, 2)
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile %v, want clamp to 2", q)
	}
}

// TestSnapshotJSONRoundTrip pins that a snapshot marshals to JSON (including
// the +Inf overflow bucket) and carries the expected fields back.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(7)
	r.Gauge("occ").Set(3.5)
	h := r.Histogram("lat", 0.001, 0.01)
	h.Observe(0.0005)
	h.Observe(5) // overflow bucket
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["reqs"] != 7 || back.Gauges["occ"] != 3.5 {
		t.Fatalf("round trip lost values: %s", raw)
	}
	hs := back.Histograms["lat"]
	if hs.Count != 2 || len(hs.Buckets) != 2 {
		t.Fatalf("histogram round trip: %+v", hs)
	}
	if !math.IsInf(hs.Buckets[1].Le, 1) {
		t.Fatalf("overflow bucket edge %v, want +Inf", hs.Buckets[1].Le)
	}
}

// TestSpanRingBounds fills a ring past capacity and checks only the newest
// spans survive, in order.
func TestSpanRingBounds(t *testing.T) {
	ring := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(Span{Name: fmt.Sprintf("s%d", i), Trace: NewTraceID()})
	}
	got := ring.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Fatalf("span %d is %q, want %q", i, s.Name, want)
		}
	}
	if ring.Total() != 10 {
		t.Fatalf("total %d, want 10", ring.Total())
	}
}

// TestTraceIDs checks uniqueness, non-zero minting, and the hex JSON form.
func TestTraceIDs(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 10_000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d mints", id, i)
		}
		seen[id] = true
	}
	id := NewTraceID()
	raw, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceID
	if err := json.Unmarshal(raw, &back); err != nil || back != id {
		t.Fatalf("trace id JSON round trip: %s -> %v (%v)", raw, back, err)
	}
}

// TestSpanStageDur covers stage lookup on present and absent names.
func TestSpanStageDur(t *testing.T) {
	s := Span{Stages: []Stage{{Name: "queue", Dur: time.Millisecond}, {Name: "compute", Dur: time.Second}}}
	if s.StageDur("compute") != time.Second || s.StageDur("queue") != time.Millisecond {
		t.Fatal("wrong stage durations")
	}
	if s.StageDur("missing") != 0 {
		t.Fatal("missing stage must read 0")
	}
}

// TestHooks covers fan-out, the progress line, and CSV output.
func TestHooks(t *testing.T) {
	ev := TrainingEvent{
		Run: "member-01", Iteration: 40, Epoch: 0.5, Loss: -1.25, CE: 0.75,
		NoiseL1: 321.5, InVivo: 1.8, BatchAcc: 0.9375, Lambda: 0.01,
		Elapsed: 1500 * time.Millisecond,
	}

	var progress, csv bytes.Buffer
	n := 0
	h := Hooks(nil, ProgressHook(&progress), CSVHook(&csv), func(TrainingEvent) { n++ })
	h.Emit(ev)
	h.Emit(ev)
	if n != 2 {
		t.Fatalf("fan-out delivered %d events, want 2", n)
	}
	line := progress.String()
	for _, want := range []string{"member-01", "iter   40", "1/snr 1.800", "93.8%"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "run,iteration,") {
		t.Fatalf("CSV output: %q", csv.String())
	}
	if !strings.HasPrefix(lines[1], "member-01,40,") {
		t.Fatalf("CSV row: %q", lines[1])
	}

	if Hooks(nil, nil) != nil {
		t.Fatal("all-nil Hooks must collapse to nil")
	}

	reg := NewRegistry()
	mh := MetricsHook(reg, "")
	mh.Emit(ev)
	snap := reg.Snapshot()
	if snap.Counters["train.events"] != 1 || snap.Gauges["train.loss"] != -1.25 || snap.Gauges["train.noise_l1"] != 321.5 {
		t.Fatalf("metrics hook snapshot: %+v", snap)
	}
	if MetricsHook(nil, "x") != nil {
		t.Fatal("MetricsHook(nil) must be nil")
	}
}
