package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDebugHandlerEndpoints exercises every route of the debug surface
// against a populated registry and span ring.
func TestDebugHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests").Add(3)
	reg.Histogram("server.latency").Observe(0.002)
	ring := NewSpanRing(8)
	ring.Record(Span{
		Trace: NewTraceID(), Name: "serve", ID: 7, Start: time.Now(),
		Dur:    3 * time.Millisecond,
		Stages: []Stage{{Name: "queue", Dur: time.Millisecond}, {Name: "compute", Dur: 2 * time.Millisecond}},
	})
	ts := httptest.NewServer(Handler(reg, ring))
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return resp
	}

	resp := get("/debug/metrics")
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["server.requests"] != 3 {
		t.Fatalf("metrics endpoint lost a counter: %+v", snap)
	}
	if h := snap.Histograms["server.latency"]; h.Count != 1 || h.P50 <= 0 {
		t.Fatalf("metrics endpoint lost histogram quantiles: %+v", h)
	}

	resp = get("/debug/spans")
	var spans []Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(spans) != 1 || spans[0].Name != "serve" || spans[0].StageDur("compute") != 2*time.Millisecond {
		t.Fatalf("spans endpoint: %+v", spans)
	}

	// ?n= limits to the newest spans.
	ring.Record(Span{Name: "serve2"})
	resp = get("/debug/spans?n=1")
	spans = nil
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(spans) != 1 || spans[0].Name != "serve2" {
		t.Fatalf("spans?n=1 should keep the newest: %+v", spans)
	}

	get("/debug/vars").Body.Close()
	get("/debug/pprof/").Body.Close()
	resp = get("/")
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "/debug/metrics") {
		t.Fatal("index page should list the endpoints")
	}
}

// TestServeDebugLifecycle binds a real listener, hits it, and closes it.
func TestServeDebugLifecycle(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", NewRegistry(), NewSpanRing(4))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + d.Addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + d.Addr + "/debug/metrics"); err == nil {
		t.Fatal("debug server still answering after Close")
	}
	var nilServer *DebugServer
	if err := nilServer.Close(); err != nil {
		t.Fatal("nil DebugServer Close must be a no-op")
	}
}

// TestHandlerWithNilBackends: the endpoints must serve empty documents, not
// crash, when no registry or ring is attached.
func TestHandlerWithNilBackends(t *testing.T) {
	ts := httptest.NewServer(Handler(nil, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics with nil registry: %v %v", err, resp)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/debug/spans")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("spans with nil ring: %v %v", err, resp)
	}
	var spans []Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(spans) != 0 {
		t.Fatalf("nil ring served spans: %+v", spans)
	}
}
