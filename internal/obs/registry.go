// Package obs is the stdlib-only observability layer of the serving stack:
// a metrics registry of lock-free counters, gauges, and fixed-bucket latency
// histograms; cheap trace/span IDs with a bounded ring of completed spans;
// training-event hooks; and an HTTP debug endpoint that exposes all of it.
//
// Everything is built to cost nothing when unused: a nil *Registry hands out
// nil metric handles, and every method on a nil Counter/Gauge/Histogram/
// SpanRing is a no-op, so instrumented code writes `m.requests.Inc()`
// unconditionally and the disabled path pays only a predictable nil check.
// Enabled, each metric update is one or two atomic operations — safe for any
// number of concurrent writers, and snapshots never block the hot path.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 value (last write wins). All
// methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts, built
// for latency distributions: Observe is lock-free and Quantile interpolates
// p50/p95/p99 from the bucket counts. Bounds are upper bucket edges in
// ascending order; values above the last bound land in an implicit overflow
// bucket. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefLatencyBuckets are the default histogram bounds, in seconds: a 1-2-5
// progression from 10µs to 10s, suited to both loopback and WAN round trips.
var DefLatencyBuckets = []float64{
	10e-6, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6,
	1e-3, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3,
	0.1, 0.2, 0.5, 1, 2, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(floatFromBits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return floatFromBits(h.sum.Load())
}

// Quantile estimates the p-quantile (0 < p < 1) by linear interpolation
// inside the bucket holding the target rank. With no observations it
// returns 0; ranks landing in the overflow bucket return the last bound.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow: clamp
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a name-indexed set of metrics. Registration (the name lookup)
// takes a mutex; the returned handles update lock-free, so hot paths
// register once up front and only touch atomics per event. A nil *Registry
// is a valid "observability disabled" registry: it hands out nil handles
// and snapshots empty.
type Registry struct {
	mu       sync.Mutex
	counts   map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	updaters map[string]func() // named refresh hooks, run before each Snapshot
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (nil bounds = DefLatencyBuckets; a
// later registration under the same name keeps the original bounds).
// Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below the upper edge Le (cumulative form is left to consumers).
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the JSON-friendly state of one histogram, with the
// standard latency quantiles precomputed.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON encoding (the /debug/metrics payload). Window, when present, carries
// the sliding-window complement of the cumulative values (see Windows).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Window     *WindowSnapshot              `json:"window,omitempty"`
}

// OnSnapshot registers a named refresh hook that runs (outside the
// registry lock) at the start of every Snapshot — how lazily computed
// gauges such as the process.* runtime series stay current for any
// consumer, from debug scrapes to window ticks, without a poller.
// Re-registering a name replaces its hook; a nil f removes it. No-op on a
// nil registry.
func (r *Registry) OnSnapshot(name string, f func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.updaters == nil {
		r.updaters = map[string]func(){}
	}
	if f == nil {
		delete(r.updaters, name)
		return
	}
	r.updaters[name] = f
}

// HasSnapshotHook reports whether a refresh hook is registered under name.
func (r *Registry) HasSnapshotHook(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.updaters[name]
	return ok
}

// Snapshot captures every metric. Values are read atomically per metric;
// the snapshot as a whole is consistent enough for monitoring, and taking
// it never blocks writers. A nil registry snapshots empty (non-nil) maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	updaters := make([]func(), 0, len(r.updaters))
	for _, f := range r.updaters {
		updaters = append(updaters, f)
	}
	r.mu.Unlock()
	// Hooks run outside the lock: they typically Set gauges, which is
	// atomic, and may even register new metrics without deadlocking.
	for _, f := range updaters {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			le := floatInf
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: n})
		}
		s.Histograms[name] = hs
	}
	return s
}
