package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request end to end: minted on the edge, carried
// over the wire, and stamped on every span the request produces. Zero means
// "untraced".
type TraceID uint64

// traceSalt decorrelates the IDs of different processes (an edge and a
// cloud minting concurrently); traceSeq makes IDs unique within one.
var (
	traceSalt = uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15 ^ uint64(os.Getpid())<<32
	traceSeq  atomic.Uint64
)

// NewTraceID mints a process-unique, never-zero trace ID. It is one atomic
// increment plus a multiply — cheap enough to mint unconditionally on the
// request hot path.
func NewTraceID() TraceID {
	for {
		id := TraceID((traceSeq.Add(1) * 0x9e3779b97f4a7c15) ^ traceSalt)
		if id != 0 {
			return id
		}
	}
}

// String renders the ID as fixed-width hex, the form used in logs and JSON.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// MarshalJSON encodes the ID as its hex string.
func (t TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON decodes the hex string form.
func (t *TraceID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return err
	}
	*t = TraceID(v)
	return nil
}

// Stage is one named sub-timing of a span — e.g. the queue / batch /
// compute phases of a served request.
type Stage struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// Span is the completed timeline of one operation. Stages partition (part
// of) the duration into named phases; Attrs carry scalar annotations such
// as the batch weight a request rode in.
type Span struct {
	Trace  TraceID            `json:"trace"`
	Name   string             `json:"name"`
	ID     uint64             `json:"id,omitempty"` // protocol request ID, when relevant
	Start  time.Time          `json:"start"`
	Dur    time.Duration      `json:"dur_ns"`
	Err    string             `json:"err,omitempty"`
	Stages []Stage            `json:"stages,omitempty"`
	Attrs  map[string]float64 `json:"attrs,omitempty"`
}

// StageDur returns the duration of the named stage (0 when absent).
func (s *Span) StageDur(name string) time.Duration {
	for _, st := range s.Stages {
		if st.Name == name {
			return st.Dur
		}
	}
	return 0
}

// SpanRing is a bounded ring buffer of completed spans: recording is O(1)
// and keeps only the most recent N, so a long-lived server can always show
// its recent request timelines without unbounded memory. All methods are
// no-ops (or empty results) on a nil receiver.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	n     int
	total uint64
}

// NewSpanRing creates a ring holding the last n completed spans (n < 1 is
// clamped to 1).
func NewSpanRing(n int) *SpanRing {
	if n < 1 {
		n = 1
	}
	return &SpanRing{buf: make([]Span, n)}
}

// Record adds one completed span, evicting the oldest when full.
func (r *SpanRing) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total returns how many spans were ever recorded (including evicted ones).
func (r *SpanRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
