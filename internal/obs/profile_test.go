package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestProfilerTableOrderAndTotals accumulates a known workload and checks
// the table preserves execution (first-seen) order and sums calls, wall
// time, and scratch bytes per direction.
func TestProfilerTableOrderAndTotals(t *testing.T) {
	p := NewProfiler(nil)
	p.ObserveLayer("conv1", false, 2*time.Millisecond, 100)
	p.ObserveLayer("relu1", false, 1*time.Millisecond, 50)
	p.ObserveLayer("conv1", false, 4*time.Millisecond, 100)
	p.ObserveLayer("relu1", true, 3*time.Millisecond, 25)

	table := p.Table()
	if len(table) != 2 {
		t.Fatalf("table has %d layers, want 2", len(table))
	}
	if table[0].Layer != "conv1" || table[1].Layer != "relu1" {
		t.Fatalf("table order %q, %q — want execution order conv1, relu1", table[0].Layer, table[1].Layer)
	}
	c := table[0]
	if c.ForwardCalls != 2 || c.ForwardTotal != 6*time.Millisecond || c.ScratchBytes != 200 {
		t.Fatalf("conv1 accumulation wrong: %+v", c)
	}
	if c.ForwardMean() != 3*time.Millisecond {
		t.Fatalf("conv1 forward mean %v, want 3ms", c.ForwardMean())
	}
	r := table[1]
	if r.ForwardCalls != 1 || r.BackwardCalls != 1 || r.BackwardTotal != 3*time.Millisecond {
		t.Fatalf("relu1 accumulation wrong: %+v", r)
	}
	if r.ScratchBytes != 75 {
		t.Fatalf("relu1 scratch %d, want 75 (fwd+bwd)", r.ScratchBytes)
	}
	if c.BackwardMean() != 0 {
		t.Fatalf("mean of zero backward calls must be 0, got %v", c.BackwardMean())
	}
}

// TestProfilerNilNoOp pins the disabled contract: every method is safe and
// inert on a nil profiler, and Track still reports elapsed time.
func TestProfilerNilNoOp(t *testing.T) {
	var p *Profiler
	p.ObserveLayer("x", false, time.Millisecond, 8)
	if got := p.Table(); got != nil {
		t.Fatalf("nil profiler table: %v", got)
	}
	p.Reset()
	stop := p.Track("region")
	if d := stop(); d < 0 {
		t.Fatalf("nil Track elapsed %v", d)
	}
	var buf bytes.Buffer
	p.WriteTable(&buf)
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatalf("nil WriteCSV: %v", err)
	}
}

// TestProfilerRegistryHistograms checks a registry-backed profiler feeds the
// per-layer forward/backward latency histograms under the documented names.
func TestProfilerRegistryHistograms(t *testing.T) {
	reg := NewRegistry()
	p := NewProfiler(reg)
	p.ObserveLayer("fc", false, 2*time.Millisecond, 0)
	p.ObserveLayer("fc", false, 2*time.Millisecond, 0)
	p.ObserveLayer("fc", true, 5*time.Millisecond, 0)
	snap := reg.Snapshot()
	fh := snap.Histograms["profile.forward_seconds.fc"]
	if fh.Count != 2 {
		t.Fatalf("forward histogram count %d, want 2 (snapshot %+v)", fh.Count, snap.Histograms)
	}
	bh := snap.Histograms["profile.backward_seconds.fc"]
	if bh.Count != 1 || bh.Sum < 0.004 || bh.Sum > 0.006 {
		t.Fatalf("backward histogram: %+v", bh)
	}
}

// TestProfilerReset zeroes the accumulators but keeps layer identity (and
// execution order) so a warm-up phase can be discarded before measuring.
func TestProfilerReset(t *testing.T) {
	p := NewProfiler(nil)
	p.ObserveLayer("a", false, time.Millisecond, 10)
	p.ObserveLayer("b", false, time.Millisecond, 10)
	p.Reset()
	table := p.Table()
	if len(table) != 2 || table[0].Layer != "a" || table[1].Layer != "b" {
		t.Fatalf("Reset lost layer identity/order: %+v", table)
	}
	for _, lp := range table {
		if lp.ForwardCalls != 0 || lp.ForwardTotal != 0 || lp.ScratchBytes != 0 {
			t.Fatalf("Reset left residue: %+v", lp)
		}
	}
	p.ObserveLayer("a", false, 2*time.Millisecond, 5)
	if got := p.Table()[0]; got.ForwardCalls != 1 || got.ForwardTotal != 2*time.Millisecond {
		t.Fatalf("post-Reset accumulation wrong: %+v", got)
	}
}

// TestProfilerTrack times a named region as one forward call and returns
// the elapsed duration.
func TestProfilerTrack(t *testing.T) {
	p := NewProfiler(nil)
	stop := p.Track("stage")
	time.Sleep(2 * time.Millisecond)
	d := stop()
	if d < 2*time.Millisecond {
		t.Fatalf("Track returned %v, slept 2ms", d)
	}
	table := p.Table()
	if len(table) != 1 || table[0].Layer != "stage" || table[0].ForwardCalls != 1 {
		t.Fatalf("Track did not record the region: %+v", table)
	}
	if table[0].ForwardTotal != d {
		t.Fatalf("recorded %v != returned %v", table[0].ForwardTotal, d)
	}
}

// TestProfilerConcurrent hammers ObserveLayer from many goroutines over
// overlapping layer names (run under -race) and checks no call is lost.
func TestProfilerConcurrent(t *testing.T) {
	p := NewProfiler(NewRegistry())
	names := []string{"conv1", "conv2", "fc"}
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.ObserveLayer(names[i%len(names)], i%5 == 0, time.Microsecond, 8)
			}
		}(w)
	}
	wg.Wait()
	var calls int64
	for _, lp := range p.Table() {
		calls += lp.ForwardCalls + lp.BackwardCalls
	}
	if calls != workers*per {
		t.Fatalf("lost observations: %d != %d", calls, workers*per)
	}
}

// TestProfilerRendering checks the text table (layer rows, shares, TOTAL)
// and the CSV form (header + one row per layer).
func TestProfilerRendering(t *testing.T) {
	p := NewProfiler(nil)
	p.ObserveLayer("conv1", false, 3*time.Millisecond, 2048)
	p.ObserveLayer("fc", false, time.Millisecond, 1<<20)

	var txt bytes.Buffer
	p.WriteTable(&txt)
	out := txt.String()
	for _, want := range []string{"conv1", "fc", "TOTAL", "75.0%", "2.0KiB", "1.0MiB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}

	var csvBuf bytes.Buffer
	if err := p.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "layer,fwd_calls,") {
		t.Fatalf("CSV output: %q", csvBuf.String())
	}
	if !strings.HasPrefix(lines[1], "conv1,1,0.003,") {
		t.Fatalf("CSV row: %q", lines[1])
	}
}
