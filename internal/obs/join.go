package obs

import "time"

// JoinedStages lists the seven canonical stages of a joined edge↔cloud
// request timeline, in wire order: the client-side quantize/serialize/send,
// the server-side queue/batch/compute, and the client-side decode.
var JoinedStages = []string{
	"quantize", "serialize", "send", "queue", "batch", "compute", "decode",
}

// JoinedSpan is one request seen from both ends: the client span's timeline
// (Start/Dur are in the client's clock) with the matching server span's
// stages spliced into the middle, and an estimate of the server-minus-client
// clock offset. Stage durations are wall times measured on whichever side
// owns the stage, so they are immune to clock skew — except the network
// transit itself, which neither side can time alone: the join reconstructs
// it as the residual of the client's wait around the server span, splits it
// evenly between the send and decode stages, and carries the RTT-midpoint
// estimation error, which can be as large as half the asymmetry between the
// two network directions. When that reconstruction would drive a stage
// negative (asymmetric links, coarse clocks, a server span wider than the
// wait that brackets it), the stage is clamped at zero and the timeline is
// flagged Skewed instead of reporting an impossible negative duration.
type JoinedSpan struct {
	Trace       TraceID            `json:"trace"`
	ID          uint64             `json:"id,omitempty"`
	Start       time.Time          `json:"start"`
	Dur         time.Duration      `json:"dur_ns"`
	ClockOffset time.Duration      `json:"clock_offset_ns"`
	Skewed      bool               `json:"skewed,omitempty"`
	Err         string             `json:"err,omitempty"`
	Stages      []Stage            `json:"stages"`
	Attrs       map[string]float64 `json:"attrs,omitempty"`
}

// StageDur returns the duration of the named stage (0 when absent).
func (j *JoinedSpan) StageDur(name string) time.Duration {
	for _, st := range j.Stages {
		if st.Name == name {
			return st.Dur
		}
	}
	return 0
}

// JoinSpans matches client spans to server spans by TraceID and merges each
// pair into a seven-stage JoinedSpan. Client spans without a matching server
// span (still in flight on the other ring, evicted, or failed before the
// wire) are skipped, as are untraced spans. Inputs are the Snapshot() of
// each side's ring; the result preserves the client ring's (oldest-first)
// order.
func JoinSpans(client, server []Span) []JoinedSpan {
	if len(client) == 0 || len(server) == 0 {
		return nil
	}
	byTrace := make(map[TraceID]*Span, len(server))
	for i := range server {
		if server[i].Trace != 0 {
			byTrace[server[i].Trace] = &server[i]
		}
	}
	var out []JoinedSpan
	for i := range client {
		cs := &client[i]
		if cs.Trace == 0 {
			continue
		}
		ss := byTrace[cs.Trace]
		if ss == nil {
			continue
		}
		out = append(out, joinOne(cs, ss))
	}
	return out
}

// joinOne merges one client/server span pair.
func joinOne(cs, ss *Span) JoinedSpan {
	j := JoinedSpan{
		Trace: cs.Trace,
		ID:    cs.ID,
		Start: cs.Start,
		Dur:   cs.Dur,
		Err:   cs.Err,
	}
	if j.Err == "" {
		j.Err = ss.Err
	}
	queue := ss.StageDur("queue")
	batch := ss.StageDur("batch")
	compute := ss.StageDur("compute")
	if queue == 0 && batch == 0 && compute == 0 {
		// Server recorded no stage breakdown (e.g. a pre-stage build):
		// attribute its whole duration to compute.
		compute = ss.Dur
	}
	// Network transit reconstruction: the client's wait stage brackets the
	// server span plus the two wire legs, so wait − serverDur is the total
	// transit, split evenly between the directions (the same symmetry
	// assumption the clock-offset estimate below rests on) and folded into
	// the send and decode stages. On asymmetric links or when the server
	// span overlaps the wait bracket (skewed stamps, coarse clocks) the
	// residual can come out negative — clamp it at zero and flag the
	// timeline rather than emit a negative stage.
	leg := (cs.StageDur("wait") - ss.Dur) / 2
	if leg < 0 {
		leg = 0
		j.Skewed = true
	}
	j.Stages = []Stage{
		{Name: "quantize", Dur: cs.StageDur("quantize")},
		{Name: "serialize", Dur: cs.StageDur("serialize")},
		{Name: "send", Dur: cs.StageDur("send") + leg},
		{Name: "queue", Dur: queue},
		{Name: "batch", Dur: batch},
		{Name: "compute", Dur: compute},
		{Name: "decode", Dur: cs.StageDur("decode") + leg},
	}
	for i := range j.Stages {
		// Stage durations are wall times and should never be negative, but a
		// peer shipping spans from another process (or another build) is not
		// under our control: clamp defensively and mark the timeline.
		if j.Stages[i].Dur < 0 {
			j.Stages[i].Dur = 0
			j.Skewed = true
		}
	}
	if len(cs.Attrs)+len(ss.Attrs) > 0 {
		j.Attrs = make(map[string]float64, len(cs.Attrs)+len(ss.Attrs))
		for k, v := range ss.Attrs {
			j.Attrs[k] = v
		}
		for k, v := range cs.Attrs {
			j.Attrs[k] = v
		}
	}
	// RTT-midpoint clock-offset estimate: the client's wait stage brackets
	// the server span plus the two network legs. Assuming symmetric legs,
	// the server span's midpoint (server clock) coincides with the wait
	// interval's midpoint (client clock); the difference of the two
	// timestamps estimates server_clock − client_clock.
	sendEnd := cs.Start.
		Add(cs.StageDur("quantize")).
		Add(cs.StageDur("serialize")).
		Add(cs.StageDur("send"))
	clientMid := sendEnd.Add(cs.StageDur("wait") / 2)
	serverMid := ss.Start.Add(ss.Dur / 2)
	j.ClockOffset = serverMid.Sub(clientMid)
	return j
}

// SpanJoiner pairs a client-side and a server-side span ring for on-demand
// joining — the /debug/spans?join=1 data source. Nil-safe.
type SpanJoiner struct {
	Client *SpanRing
	Server *SpanRing
}

// Joined snapshots both rings and returns the joined timelines.
func (j *SpanJoiner) Joined() []JoinedSpan {
	if j == nil {
		return nil
	}
	return JoinSpans(j.Client.Snapshot(), j.Server.Snapshot())
}
