package obs

import (
	"encoding/json"
	"math"
)

var floatInf = math.Inf(1)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// bucketWire keeps the overflow bucket JSON-encodable: encoding/json rejects
// +Inf, so the upper edge travels as the string "+Inf" instead.
type bucketWire struct {
	Le    any   `json:"le"`
	Count int64 `json:"count"`
}

// MarshalJSON encodes the bucket, writing an infinite upper edge as "+Inf".
func (b Bucket) MarshalJSON() ([]byte, error) {
	w := bucketWire{Le: b.Le, Count: b.Count}
	if math.IsInf(b.Le, 1) {
		w.Le = "+Inf"
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes both numeric and "+Inf" upper edges.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	b.Count = w.Count
	switch le := w.Le.(type) {
	case float64:
		b.Le = le
	case string:
		b.Le = floatInf
	}
	return nil
}
