package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics/Prometheus text exposition (format 0.0.4) for a Snapshot, so
// the same /debug/metrics endpoint that serves the JSON payload can be
// scraped by a standard collector with ?format=prom. Counters and gauges
// map directly; histograms emit the conventional cumulative _bucket series
// (always ending in le="+Inf"), _sum, and _count; windowed aggregates —
// which Prometheus cannot derive from our JSON shape — are exported as
// plain gauges under a _window_ suffix.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way the exposition format expects,
// including the literal "+Inf".
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteProm writes s in the Prometheus text exposition format. Output is
// deterministic (sorted by metric name) so scrapes diff cleanly.
func WriteProm(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Snapshot buckets are sparse per-bucket counts; the exposition
		// format wants cumulative counts per upper edge, ending at +Inf.
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Le >= floatInf {
				break // the +Inf line below always carries the full count
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(b.Le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, h.Count, n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	if s.Window == nil {
		return nil
	}
	// Windowed aggregates as gauges: a scraper gets this process's rolling
	// rates and quantiles without needing recording rules.
	if _, err := fmt.Fprintf(w, "# TYPE window_seconds gauge\nwindow_seconds %s\n", promFloat(s.Window.Seconds)); err != nil {
		return err
	}
	for _, name := range sortedKeys(s.Window.Counters) {
		n := promName(name) + "_window_rate"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Window.Counters[name].Rate)); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Window.Histograms) {
		h := s.Window.Histograms[name]
		base := promName(name) + "_window"
		for _, q := range []struct {
			suffix string
			v      float64
		}{
			{"_rate", h.Rate}, {"_mean", h.Mean},
			{"_p50", h.P50}, {"_p95", h.P95}, {"_p99", h.P99},
		} {
			n := base + q.suffix
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(q.v)); err != nil {
				return err
			}
		}
	}
	return nil
}
