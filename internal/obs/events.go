package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The SLO event stream: structured firing/resolved transitions kept in a
// bounded ring and served at /debug/events, with the same fan-out story as
// the metrics merge — a gateway pulls every backend's event feed and serves
// the fleet's union from one endpoint, each event labelled with its source.

// EventState is the transition an Event records.
type EventState string

const (
	// StateFiring marks the evaluation at which an objective started
	// breaching its target.
	StateFiring EventState = "firing"
	// StateResolved marks the evaluation at which a firing objective
	// returned within target.
	StateResolved EventState = "resolved"
)

// Event is one SLO state transition: which objective, which way it
// crossed, the window value versus the target at the transition, and how
// much history the verdict covered.
type Event struct {
	Seq       uint64            `json:"seq"` // per-ring monotone sequence
	UnixNanos int64             `json:"unix_nanos"`
	Name      string            `json:"objective"`
	State     EventState        `json:"state"`
	Value     float64           `json:"value"`  // window aggregate at the transition
	Target    float64           `json:"target"` // the objective's threshold
	Op        Op                `json:"op"`     // how Value is judged against Target
	Window    float64           `json:"window_seconds"`
	Source    string            `json:"source,omitempty"` // backend label in merged views
	Labels    map[string]string `json:"labels,omitempty"`
}

// Time returns the event's timestamp.
func (e Event) Time() time.Time { return time.Unix(0, e.UnixNanos) }

// String renders one event the way `shredder top` and logs print it.
func (e Event) String() string {
	src := ""
	if e.Source != "" {
		src = e.Source + " "
	}
	return fmt.Sprintf("%s%s %s: value %.4g %s target %.4g over %.0fs",
		src, e.Name, e.State, e.Value, e.Op, e.Target, e.Window)
}

// EventRing is a bounded ring of SLO events: appends never block or grow,
// old events fall off the front, and Seq keeps consumers able to detect
// both loss and novelty. All methods are safe for concurrent use and
// no-ops on a nil ring.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	next  int // insertion index
	count int
	seq   uint64
}

// NewEventRing creates a ring holding the last n events (n < 1 is clamped
// to 1).
func NewEventRing(n int) *EventRing {
	if n < 1 {
		n = 1
	}
	return &EventRing{buf: make([]Event, n)}
}

// Append stamps the event with the next sequence number and stores it,
// evicting the oldest when full. Returns the stamped event (zero Event on
// a nil ring).
func (r *EventRing) Append(e Event) Event {
	if r == nil {
		return Event{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e.Seq = r.seq
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	return e
}

// Snapshot returns the retained events, oldest first. A nil ring returns
// nil.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Since returns the retained events with Seq > after, oldest first — the
// incremental poll a dashboard uses.
func (r *EventRing) Since(after uint64) []Event {
	all := r.Snapshot()
	i := sort.Search(len(all), func(i int) bool { return all[i].Seq > after })
	return all[i:]
}

// Total returns how many events were ever appended (including evicted
// ones).
func (r *EventRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// EventSource is one labelled event feed for a merged /debug/events
// endpoint — the event-stream analogue of SnapshotSource. A failing Fetch
// is reported inside the merged payload rather than failing it: a dead
// backend must not blind the fleet's alert view.
type EventSource struct {
	Label string
	Fetch func() ([]Event, error)
}

// HTTPEventSource builds an EventSource pulling a remote /debug/events
// endpoint (any URL serving a JSON []Event) with a short timeout.
func HTTPEventSource(label, url string) EventSource {
	client := &http.Client{Timeout: 2 * time.Second}
	return EventSource{Label: label, Fetch: func() ([]Event, error) {
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("obs: %s: status %s", url, resp.Status)
		}
		var events []Event
		if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
			return nil, err
		}
		return events, nil
	}}
}

// MergedEvents folds the local ring and every source's events into one
// time-ordered list: local events keep an empty Source, fetched events are
// stamped with their source's label, and a failing source contributes a
// single synthetic firing event for the objective "event-source" so the
// outage itself is visible in the stream it broke. The merge never fails.
func MergedEvents(local *EventRing, sources []EventSource) []Event {
	out := local.Snapshot()
	for _, src := range sources {
		if src.Fetch == nil {
			continue
		}
		events, err := src.Fetch()
		if err != nil {
			out = append(out, Event{
				UnixNanos: time.Now().UnixNano(),
				Name:      "event-source",
				State:     StateFiring,
				Source:    src.Label,
				Labels:    map[string]string{"error": err.Error()},
			})
			continue
		}
		for _, e := range events {
			if e.Source == "" {
				e.Source = src.Label
			} else {
				e.Source = src.Label + "." + e.Source // nested merges stay attributable
			}
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].UnixNanos < out[j].UnixNanos })
	return out
}
