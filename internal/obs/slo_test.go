package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestSLOFiringResolved: a latency ceiling fires when the windowed p99
// crosses the target and resolves when it recovers, with the transitions
// mirrored in slo.* gauges and the event ring.
func TestSLOFiringResolved(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("server.latency_seconds", 0.001, 0.005, 0.05, 0.5)
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 2})
	s, err := NewSLO(w, nil, Objective{
		Name: "latency.p99", Metric: "server.latency_seconds",
		Aggregate: AggP99, Op: OpAtMost, Target: 0.005,
		Labels: map[string]string{"tier": "gold"},
	})
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Unix(0, 0)
	s.Evaluate(t0) // baseline

	// Fast traffic: within target, no transition (initial state is healthy).
	for i := 0; i < 100; i++ {
		h.Observe(0.0005)
	}
	if ev := s.Evaluate(t0.Add(time.Second)); len(ev) != 0 {
		t.Fatalf("healthy traffic emitted %v", ev)
	}
	if f := s.Firing(); len(f) != 0 {
		t.Fatalf("firing = %v, want none", f)
	}

	// Slow traffic floods the window: p99 breaches and one firing event
	// lands with the objective's labels.
	for i := 0; i < 1000; i++ {
		h.Observe(0.3)
	}
	ev := s.Evaluate(t0.Add(2 * time.Second))
	if len(ev) != 1 || ev[0].State != StateFiring || ev[0].Name != "latency.p99" {
		t.Fatalf("breach emitted %v", ev)
	}
	if ev[0].Value <= 0.005 || ev[0].Target != 0.005 || ev[0].Op != OpAtMost {
		t.Fatalf("firing event payload: %+v", ev[0])
	}
	if ev[0].Labels["tier"] != "gold" {
		t.Fatalf("labels not carried: %+v", ev[0].Labels)
	}
	if f := s.Firing(); len(f) != 1 || f[0] != "latency.p99" {
		t.Fatalf("firing = %v", f)
	}
	snap := reg.Snapshot()
	if snap.Gauges["slo.latency.p99.firing"] != 1 {
		t.Fatalf("firing gauge = %v, want 1", snap.Gauges["slo.latency.p99.firing"])
	}
	if snap.Gauges["slo.latency.p99.target"] != 0.005 {
		t.Fatalf("target gauge = %v", snap.Gauges["slo.latency.p99.target"])
	}

	// Still breaching on the next evaluation: no duplicate event.
	for i := 0; i < 1000; i++ {
		h.Observe(0.3)
	}
	if ev := s.Evaluate(t0.Add(3 * time.Second)); len(ev) != 0 {
		t.Fatalf("steady breach re-emitted %v", ev)
	}

	// Recovery: the slow burst ages out of the 2-bucket window and a
	// resolved event lands.
	var resolved []Event
	at := t0.Add(3 * time.Second)
	for i := 0; i < 4; i++ {
		at = at.Add(time.Second)
		for j := 0; j < 100; j++ {
			h.Observe(0.0005)
		}
		resolved = append(resolved, s.Evaluate(at)...)
	}
	if len(resolved) != 1 || resolved[0].State != StateResolved {
		t.Fatalf("recovery emitted %v", resolved)
	}
	if snap := reg.Snapshot(); snap.Gauges["slo.latency.p99.firing"] != 0 {
		t.Fatal("firing gauge should clear on resolve")
	}
	if f := s.Firing(); len(f) != 0 {
		t.Fatalf("firing after recovery = %v", f)
	}

	// Both transitions sit in the ring in order, and the counters add up.
	events := s.Events().Snapshot()
	if len(events) != 2 || events[0].State != StateFiring || events[1].State != StateResolved {
		t.Fatalf("ring = %v", events)
	}
	if snap := reg.Snapshot(); snap.Counters["slo.events"] != 2 {
		t.Fatalf("slo.events = %d, want 2", snap.Counters["slo.events"])
	}
}

// TestSLOPrivacyFloor: an OpAtLeast objective over a privacy metric fires
// when the windowed mean drops below the floor — "not noisy enough" is the
// breach direction.
func TestSLOPrivacyFloor(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("privacy.invivo", 0.5, 1, 2, 4, 8)
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 2})
	s, err := NewSLO(w, nil, Objective{
		Name: "privacy.invivo", Metric: "privacy.invivo",
		Aggregate: AggMean, Op: OpAtLeast, Target: 3, MinCount: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(0, 0)
	s.Evaluate(t0)

	// Below MinCount: no verdict even though the values breach.
	for i := 0; i < 3; i++ {
		h.Observe(0.6)
	}
	if ev := s.Evaluate(t0.Add(time.Second)); len(ev) != 0 {
		t.Fatalf("below MinCount emitted %v", ev)
	}

	// Enough samples, still low: fires.
	for i := 0; i < 10; i++ {
		h.Observe(0.6)
	}
	ev := s.Evaluate(t0.Add(2 * time.Second))
	if len(ev) != 1 || ev[0].State != StateFiring || ev[0].Op != OpAtLeast {
		t.Fatalf("privacy floor breach emitted %v", ev)
	}

	// High 1/SNR traffic displaces the window: resolves.
	var resolved []Event
	at := t0.Add(2 * time.Second)
	for i := 0; i < 4; i++ {
		at = at.Add(time.Second)
		for j := 0; j < 20; j++ {
			h.Observe(6)
		}
		resolved = append(resolved, s.Evaluate(at)...)
	}
	if len(resolved) != 1 || resolved[0].State != StateResolved {
		t.Fatalf("privacy recovery emitted %v", resolved)
	}
}

// TestSLONoDataHoldsVerdict: a quiet window neither fires nor resolves —
// the previous verdict stands until data argues otherwise.
func TestSLONoDataHoldsVerdict(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", 0.001, 0.01)
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 2})
	s, err := NewSLO(w, nil, Objective{
		Name: "lat.p50", Metric: "lat", Aggregate: AggP50, Op: OpAtMost, Target: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(0, 0)
	s.Evaluate(t0)
	for i := 0; i < 10; i++ {
		h.Observe(0.005) // breach
	}
	if ev := s.Evaluate(t0.Add(time.Second)); len(ev) != 1 || ev[0].State != StateFiring {
		t.Fatalf("breach emitted %v", ev)
	}
	// Traffic stops; the breach ages out, the window goes empty — and the
	// verdict holds rather than resolving on absence of evidence.
	at := t0.Add(time.Second)
	for i := 0; i < 6; i++ {
		at = at.Add(time.Second)
		if ev := s.Evaluate(at); len(ev) != 0 {
			t.Fatalf("quiet window emitted %v", ev)
		}
	}
	if f := s.Firing(); len(f) != 1 {
		t.Fatalf("verdict should hold through quiet windows: %v", f)
	}
}

// TestSLOCounterRate: AggRate works against plain counters.
func TestSLOCounterRate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("server.errors")
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 2})
	s, err := NewSLO(w, nil, Objective{
		Name: "errors.rate", Metric: "server.errors", Aggregate: AggRate, Op: OpAtMost, Target: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(0, 0)
	s.Evaluate(t0)
	c.Add(100) // 100 errors in 1s: rate 100/s > 5/s
	if ev := s.Evaluate(t0.Add(time.Second)); len(ev) != 1 || ev[0].State != StateFiring {
		t.Fatalf("error-rate breach emitted %v", ev)
	}
}

// TestSLOValidation: bad objectives are rejected up front.
func TestSLOValidation(t *testing.T) {
	reg := NewRegistry()
	w := NewWindows(reg, WindowOptions{})
	good := Objective{Name: "a", Metric: "m", Aggregate: AggP50, Op: OpAtMost, Target: 1}
	cases := []struct {
		name string
		win  *Windows
		objs []Objective
	}{
		{"nil window", nil, []Objective{good}},
		{"no objectives", w, nil},
		{"missing name", w, []Objective{{Metric: "m", Aggregate: AggP50, Op: OpAtMost}}},
		{"missing metric", w, []Objective{{Name: "a", Aggregate: AggP50, Op: OpAtMost}}},
		{"bad aggregate", w, []Objective{{Name: "a", Metric: "m", Aggregate: "p42", Op: OpAtMost}}},
		{"bad op", w, []Objective{{Name: "a", Metric: "m", Aggregate: AggP50, Op: "=="}}},
		{"duplicate name", w, []Objective{good, good}},
	}
	for _, tc := range cases {
		if _, err := NewSLO(tc.win, nil, tc.objs...); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestSLOStartStop: the ticker evaluates in the background and stop is
// idempotent.
func TestSLOStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat", 0.001)
	w := NewWindows(reg, WindowOptions{Bucket: 5 * time.Millisecond, Buckets: 2})
	s, err := NewSLO(w, nil, Objective{
		Name: "lat.p50", Metric: "lat", Aggregate: AggP50, Op: OpAtMost, Target: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := s.Start(0) // 0 = the window's bucket cadence
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["slo.evals"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never evaluated")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

// TestSLONil: every method is a no-op on a nil SLO.
func TestSLONil(t *testing.T) {
	var s *SLO
	if s.Events() != nil || s.Objectives() != nil || s.Firing() != nil {
		t.Fatal("nil SLO accessors should return nil")
	}
	if ev := s.Evaluate(time.Now()); ev != nil {
		t.Fatalf("nil Evaluate: %v", ev)
	}
	s.Start(time.Second)()
}

// TestEventRing: bounded append, oldest-first snapshots, Since, Total, and
// nil safety.
func TestEventRing(t *testing.T) {
	r := NewEventRing(3)
	for i := 1; i <= 5; i++ {
		e := r.Append(Event{Name: fmt.Sprintf("e%d", i)})
		if e.Seq != uint64(i) {
			t.Fatalf("append %d stamped seq %d", i, e.Seq)
		}
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].Name != "e3" || got[2].Name != "e5" {
		t.Fatalf("ring snapshot = %v", got)
	}
	if since := r.Since(4); len(since) != 1 || since[0].Name != "e5" {
		t.Fatalf("Since(4) = %v", since)
	}
	if since := r.Since(99); len(since) != 0 {
		t.Fatalf("Since(99) = %v", since)
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}

	var nilRing *EventRing
	if e := nilRing.Append(Event{Name: "x"}); e.Seq != 0 {
		t.Fatal("nil ring Append should return zero Event")
	}
	if nilRing.Snapshot() != nil || nilRing.Total() != 0 {
		t.Fatal("nil ring reads should be empty")
	}
	if NewEventRing(0) == nil {
		t.Fatal("NewEventRing clamps n to 1")
	}
}

// TestMergedEvents: local events keep an empty source, fetched events get
// stamped (nested labels compose), a failing source surfaces as a
// synthetic firing event, and the merge is time-ordered.
func TestMergedEvents(t *testing.T) {
	local := NewEventRing(8)
	local.Append(Event{UnixNanos: 30, Name: "local.obj", State: StateFiring})
	sources := []EventSource{
		{Label: "backend.a", Fetch: func() ([]Event, error) {
			return []Event{
				{UnixNanos: 10, Name: "lat", State: StateFiring},
				{UnixNanos: 40, Name: "lat", State: StateResolved, Source: "inner"},
			}, nil
		}},
		{Label: "backend.b", Fetch: func() ([]Event, error) {
			return nil, fmt.Errorf("connection refused")
		}},
		{Label: "backend.c"}, // nil Fetch: skipped
	}
	out := MergedEvents(local, sources)
	if len(out) != 4 {
		t.Fatalf("merged %d events: %v", len(out), out)
	}
	// Time-ordered; the synthetic outage event is stamped time.Now() so it
	// sorts last here.
	if out[0].Name != "lat" || out[0].Source != "backend.a" {
		t.Fatalf("first = %+v", out[0])
	}
	if out[1].Name != "local.obj" || out[1].Source != "" {
		t.Fatalf("local event = %+v", out[1])
	}
	if out[2].Source != "backend.a.inner" {
		t.Fatalf("nested source = %+v", out[2])
	}
	outage := out[3]
	if outage.Name != "event-source" || outage.State != StateFiring || outage.Source != "backend.b" {
		t.Fatalf("outage event = %+v", outage)
	}
	if !strings.Contains(outage.Labels["error"], "connection refused") {
		t.Fatalf("outage error label = %v", outage.Labels)
	}
}

// TestEventString: the one-line rendering carries source, state, and the
// value-vs-target comparison.
func TestEventString(t *testing.T) {
	e := Event{Name: "latency.p99", State: StateFiring, Value: 0.042, Target: 0.005, Op: OpAtMost, Window: 60, Source: "backend.a"}
	s := e.String()
	for _, want := range []string{"backend.a", "latency.p99", "firing", "0.042", "<=", "0.005", "60s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
