package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promParse is a minimal exposition-format checker: it validates every
// line is either a well-formed comment or a `name[{labels}] value` sample,
// TYPE declarations precede their samples, histogram buckets are
// cumulative and end at +Inf with the _count value, and returns the
// samples keyed by "name{labels}".
func promParse(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	nameOK := func(s string) bool {
		for i, c := range s {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			case c >= '0' && c <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
		return s != ""
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" || !nameOK(f[2]) {
				t.Fatalf("malformed comment line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			name = key[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && types[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !nameOK(name) {
			t.Fatalf("illegal metric name in %q", line)
		}
		if _, declared := types[base]; !declared {
			t.Fatalf("sample %q precedes its # TYPE declaration", line)
		}
		samples[key] = val
	}
	// Histogram invariants: buckets cumulative, +Inf present and equal to
	// _count.
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		var les []float64
		for key := range samples {
			if strings.HasPrefix(key, name+"_bucket{le=\"") {
				leStr := strings.TrimSuffix(strings.TrimPrefix(key, name+"_bucket{le=\""), "\"}")
				le := math.Inf(1)
				if leStr != "+Inf" {
					v, err := strconv.ParseFloat(leStr, 64)
					if err != nil {
						t.Fatalf("bad le in %q: %v", key, err)
					}
					le = v
				}
				les = append(les, le)
			}
		}
		hasInf := false
		prev := -1.0
		for _, le := range sortedFloats(les) {
			key := fmt.Sprintf("%s_bucket{le=%q}", name, promFloat(le))
			if samples[key] < prev {
				t.Fatalf("%s buckets not cumulative at le=%v", name, le)
			}
			prev = samples[key]
			if math.IsInf(le, 1) {
				hasInf = true
				if samples[key] != samples[name+"_count"] {
					t.Fatalf("%s +Inf bucket %v != count %v", name, samples[key], samples[name+"_count"])
				}
			}
		}
		if !hasInf {
			t.Fatalf("histogram %s has no +Inf bucket", name)
		}
	}
	return samples
}

func sortedFloats(v []float64) []float64 {
	out := append([]float64(nil), v...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestWritePromBasic: counters, gauges, and a histogram with overflow
// observations round-trip through the exposition format.
func TestWritePromBasic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests").Add(42)
	reg.Gauge("pool.backends").Set(3)
	h := reg.Histogram("server.latency_seconds", 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // overflow

	var b strings.Builder
	if err := WriteProm(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples := promParse(t, b.String())
	if samples["server_requests"] != 42 {
		t.Fatalf("counter sample = %v", samples["server_requests"])
	}
	if samples["pool_backends"] != 3 {
		t.Fatalf("gauge sample = %v", samples["pool_backends"])
	}
	if got := samples[`server_latency_seconds_bucket{le="+Inf"}`]; got != 3 {
		t.Fatalf("+Inf bucket = %v, want 3 (must include overflow)", got)
	}
	if got := samples[`server_latency_seconds_bucket{le="0.001"}`]; got != 1 {
		t.Fatalf("first bucket = %v, want cumulative 1", got)
	}
	if got := samples[`server_latency_seconds_bucket{le="0.1"}`]; got != 2 {
		t.Fatalf("last finite bucket = %v, want cumulative 2", got)
	}
	if samples["server_latency_seconds_count"] != 3 {
		t.Fatalf("count = %v", samples["server_latency_seconds_count"])
	}
	if math.Abs(samples["server_latency_seconds_sum"]-5.0505) > 1e-9 {
		t.Fatalf("sum = %v", samples["server_latency_seconds_sum"])
	}
}

// TestWritePromWindow: windowed aggregates land as *_window_* gauges plus
// the covered-span gauge.
func TestWritePromWindow(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("server.requests")
	h := reg.Histogram("server.latency_seconds", 0.001, 0.01, 0.1)
	w := NewWindows(reg, WindowOptions{Bucket: time.Second, Buckets: 4})
	t0 := time.Unix(0, 0)
	w.AdvanceWith(t0, reg.Snapshot())
	c.Add(20)
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	snap := reg.Snapshot()
	snap.Window = w.AdvanceWith(t0.Add(2*time.Second), snap)

	var b strings.Builder
	if err := WriteProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	samples := promParse(t, b.String())
	if samples["window_seconds"] != 2 {
		t.Fatalf("window_seconds = %v", samples["window_seconds"])
	}
	if samples["server_requests_window_rate"] != 10 {
		t.Fatalf("window rate = %v, want 10/s", samples["server_requests_window_rate"])
	}
	if p99 := samples["server_latency_seconds_window_p99"]; p99 <= 0.01 || p99 > 0.1 {
		t.Fatalf("window p99 = %v, want in (0.01, 0.1]", p99)
	}
	if mean := samples["server_latency_seconds_window_mean"]; math.Abs(mean-0.05) > 1e-9 {
		t.Fatalf("window mean = %v", mean)
	}
}

// TestWritePromMerged: a merged (gateway) snapshot — dotted per-backend
// prefixes and all — still emits valid exposition text.
func TestWritePromMerged(t *testing.T) {
	backend := NewRegistry()
	backend.Counter("server.requests").Add(7)
	backend.Histogram("server.latency_seconds", 0.001, 0.01).Observe(0.002)
	base := NewRegistry()
	base.Counter("gateway.requests").Add(9)
	snap := MergedSnapshot(base, []SnapshotSource{
		{Label: "backend.a", Fetch: func() (Snapshot, error) { return backend.Snapshot(), nil }},
		{Label: "backend.b", Fetch: func() (Snapshot, error) { return Snapshot{}, fmt.Errorf("down") }},
	})

	var b strings.Builder
	if err := WriteProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	samples := promParse(t, b.String())
	if samples["backend_a_server_requests"] != 7 {
		t.Fatalf("merged counter = %v", samples["backend_a_server_requests"])
	}
	if samples["gateway_requests"] != 9 {
		t.Fatalf("base counter = %v", samples["gateway_requests"])
	}
	if samples["merge_failed_backend_b"] != 1 {
		t.Fatalf("failed source marker = %v", samples["merge_failed_backend_b"])
	}
	if samples["backend_a_server_latency_seconds_count"] != 1 {
		t.Fatalf("merged histogram count = %v", samples["backend_a_server_latency_seconds_count"])
	}
}

// TestPromName: sanitization produces legal names.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.requests":     "server_requests",
		"backend.a.lat-p99":   "backend_a_lat_p99",
		"9lives":              "_9lives",
		"ok_name:with:colons": "ok_name:with:colons",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
