package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefProfileBuckets are the default per-layer compute-time histogram bounds,
// in seconds: layer steps run from sub-10µs activations to multi-millisecond
// convolutions, one decade below DefLatencyBuckets' round-trip range.
var DefProfileBuckets = []float64{
	1e-6, 2e-6, 5e-6, 10e-6, 20e-6, 50e-6, 100e-6, 200e-6, 500e-6,
	1e-3, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 0.1, 0.2, 0.5, 1,
}

// Profiler accumulates per-layer compute cost: forward/backward call counts,
// wall time, and scratch-tensor bytes, keyed by layer name in first-seen
// (execution) order. It implements nn's Profiler interface structurally, so
// it plugs into Sequential.SetProfiler / Tape.Profiler without nn importing
// obs. When built over a non-nil Registry it also feeds per-layer latency
// histograms (profile.forward_seconds.<layer>, profile.backward_seconds.
// <layer>) so quantiles show up in /debug/metrics alongside the table.
//
// All methods are safe for concurrent use, and safe on a nil receiver (the
// disabled contract shared by the rest of the package).
type Profiler struct {
	reg *Registry

	mu    sync.RWMutex
	idx   map[string]*layerProf
	order []*layerProf
}

// layerProf is the accumulator for one layer (or named region).
type layerProf struct {
	name               string
	fwdCalls, bwdCalls atomic.Int64
	fwdNs, bwdNs       atomic.Int64
	scratch            atomic.Int64
	fwdHist, bwdHist   *Histogram // nil when the profiler has no registry
}

// NewProfiler creates a profiler. reg may be nil: the cumulative table
// still accumulates, only the per-layer registry histograms are skipped.
func NewProfiler(reg *Registry) *Profiler {
	return &Profiler{reg: reg, idx: map[string]*layerProf{}}
}

// layer returns the accumulator for name, creating it on first sight.
func (p *Profiler) layer(name string) *layerProf {
	p.mu.RLock()
	lp := p.idx[name]
	p.mu.RUnlock()
	if lp != nil {
		return lp
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if lp = p.idx[name]; lp != nil {
		return lp
	}
	lp = &layerProf{name: name}
	if p.reg != nil {
		lp.fwdHist = p.reg.Histogram("profile.forward_seconds."+name, DefProfileBuckets...)
		lp.bwdHist = p.reg.Histogram("profile.backward_seconds."+name, DefProfileBuckets...)
	}
	p.idx[name] = lp
	p.order = append(p.order, lp)
	return lp
}

// ObserveLayer records one layer step. It is the nn-side profiling hook:
// layer is the layer name, backward selects the direction, d the step's
// wall time, and scratchBytes the bytes of the tensor the step produced.
func (p *Profiler) ObserveLayer(layer string, backward bool, d time.Duration, scratchBytes int64) {
	if p == nil {
		return
	}
	lp := p.layer(layer)
	lp.scratch.Add(scratchBytes)
	if backward {
		lp.bwdCalls.Add(1)
		lp.bwdNs.Add(int64(d))
		lp.bwdHist.Observe(d.Seconds())
	} else {
		lp.fwdCalls.Add(1)
		lp.fwdNs.Add(int64(d))
		lp.fwdHist.Observe(d.Seconds())
	}
}

// Track times an arbitrary named region through the same accumulator: it
// returns a stop function that records the elapsed time as one forward call
// of the region and returns it. Callers that only want the side effect can
// discard the duration. Usable on a nil profiler (records nothing, still
// returns the elapsed time).
func (p *Profiler) Track(name string) func() time.Duration {
	t0 := time.Now()
	return func() time.Duration {
		d := time.Since(t0)
		p.ObserveLayer(name, false, d, 0)
		return d
	}
}

// LayerProfile is the cumulative cost of one layer, as reported by Table.
type LayerProfile struct {
	Layer         string        `json:"layer"`
	ForwardCalls  int64         `json:"forward_calls"`
	ForwardTotal  time.Duration `json:"forward_ns"`
	BackwardCalls int64         `json:"backward_calls,omitempty"`
	BackwardTotal time.Duration `json:"backward_ns,omitempty"`
	ScratchBytes  int64         `json:"scratch_bytes"`
}

// ForwardMean returns the mean forward step time (0 with no calls).
func (lp LayerProfile) ForwardMean() time.Duration {
	if lp.ForwardCalls == 0 {
		return 0
	}
	return lp.ForwardTotal / time.Duration(lp.ForwardCalls)
}

// BackwardMean returns the mean backward step time (0 with no calls).
func (lp LayerProfile) BackwardMean() time.Duration {
	if lp.BackwardCalls == 0 {
		return 0
	}
	return lp.BackwardTotal / time.Duration(lp.BackwardCalls)
}

// Table snapshots the per-layer totals in execution (first-seen) order.
// Nil-safe: a nil profiler returns an empty table.
func (p *Profiler) Table() []LayerProfile {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]LayerProfile, 0, len(p.order))
	for _, lp := range p.order {
		out = append(out, LayerProfile{
			Layer:         lp.name,
			ForwardCalls:  lp.fwdCalls.Load(),
			ForwardTotal:  time.Duration(lp.fwdNs.Load()),
			BackwardCalls: lp.bwdCalls.Load(),
			BackwardTotal: time.Duration(lp.bwdNs.Load()),
			ScratchBytes:  lp.scratch.Load(),
		})
	}
	return out
}

// Reset zeroes every accumulator while keeping layer identity and any
// registered histograms (histogram contents are append-only and are not
// cleared — Reset is for re-timing within one process, as the profile
// subcommand does between warm-up and measurement).
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, lp := range p.order {
		lp.fwdCalls.Store(0)
		lp.bwdCalls.Store(0)
		lp.fwdNs.Store(0)
		lp.bwdNs.Store(0)
		lp.scratch.Store(0)
	}
}

// WriteTable renders the cumulative profile as an aligned text table with a
// totals row, including each layer's share of total forward time.
func (p *Profiler) WriteTable(w io.Writer) {
	table := p.Table()
	var totFwd, totBwd time.Duration
	var totScratch int64
	for _, lp := range table {
		totFwd += lp.ForwardTotal
		totBwd += lp.BackwardTotal
		totScratch += lp.ScratchBytes
	}
	fmt.Fprintf(w, "%-16s %9s %12s %12s %6s %9s %12s %10s\n",
		"layer", "fwd n", "fwd total", "fwd mean", "fwd%", "bwd n", "bwd total", "scratch")
	for _, lp := range table {
		share := 0.0
		if totFwd > 0 {
			share = 100 * float64(lp.ForwardTotal) / float64(totFwd)
		}
		fmt.Fprintf(w, "%-16s %9d %12s %12s %5.1f%% %9d %12s %10s\n",
			lp.Layer, lp.ForwardCalls, fmtDur(lp.ForwardTotal), fmtDur(lp.ForwardMean()),
			share, lp.BackwardCalls, fmtDur(lp.BackwardTotal), fmtBytes(lp.ScratchBytes))
	}
	fmt.Fprintf(w, "%-16s %9s %12s %12s %6s %9s %12s %10s\n",
		"TOTAL", "", fmtDur(totFwd), "", "", "", fmtDur(totBwd), fmtBytes(totScratch))
}

// WriteCSV writes the cumulative profile as CSV with a header row.
func (p *Profiler) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"layer", "fwd_calls", "fwd_total_s", "fwd_mean_s",
		"bwd_calls", "bwd_total_s", "bwd_mean_s", "scratch_bytes",
	}); err != nil {
		return err
	}
	for _, lp := range p.Table() {
		rec := []string{
			lp.Layer,
			strconv.FormatInt(lp.ForwardCalls, 10),
			strconv.FormatFloat(lp.ForwardTotal.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(lp.ForwardMean().Seconds(), 'g', -1, 64),
			strconv.FormatInt(lp.BackwardCalls, 10),
			strconv.FormatFloat(lp.BackwardTotal.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(lp.BackwardMean().Seconds(), 'g', -1, 64),
			strconv.FormatInt(lp.ScratchBytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// fmtDur rounds a duration to a display-friendly precision.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return d.Round(100 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// fmtBytes renders a byte count with a binary-prefix unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
