package obs

import (
	"sync"
	"time"
)

// Sliding-window aggregation over the cumulative registry.
//
// Every metric in the registry is cumulative-since-start, which is the right
// primitive for a lock-free hot path but the wrong lens for operations: a
// fleet serving millions of queries hides an hour-long regression inside
// lifetime averages. Windows adds the missing lens WITHOUT adding a second
// write path: it keeps a ring of cumulative Snapshots captured at bucket
// boundaries, and a window aggregate is simply the difference between the
// newest snapshot and the oldest retained one. Counters difference into
// per-window deltas and rates; histograms difference bucket-by-bucket, so
// windowed p50/p95/p99 interpolate from exactly the same bucket layout the
// cumulative quantiles use. The hot path (Counter.Add, Histogram.Observe)
// is untouched — instrumented code cannot tell whether a window is watching
// — which is what keeps the windowed serving path within noise of
// cumulative-only (pinned by BenchmarkWindowOverhead).
type Windows struct {
	reg    *Registry
	bucket time.Duration
	n      int

	mu    sync.Mutex
	ring  []windowCell // capacity n+1: n bucket spans need n+1 boundary samples
	start int          // index of the oldest cell
	count int          // cells in use

	stopOnce sync.Once
	stopCh   chan struct{}
}

// windowCell is one bucket-boundary sample: the registry's cumulative state
// at one instant.
type windowCell struct {
	at   time.Time
	snap Snapshot
}

// WindowOptions sizes a sliding window.
type WindowOptions struct {
	// Bucket is the ring's bucket duration — the granularity at which old
	// observations age out. Default 5s.
	Bucket time.Duration
	// Buckets is how many buckets the window spans. Default 12 (a one-minute
	// window at the default bucket).
	Buckets int
}

func (o WindowOptions) withDefaults() WindowOptions {
	if o.Bucket <= 0 {
		o.Bucket = 5 * time.Second
	}
	if o.Buckets <= 0 {
		o.Buckets = 12
	}
	return o
}

// Span returns the window's nominal duration (Bucket × Buckets).
func (o WindowOptions) Span() time.Duration {
	o = o.withDefaults()
	return o.Bucket * time.Duration(o.Buckets)
}

// NewWindows builds a sliding window over reg. Returns nil (a valid,
// disabled window: every method no-ops and Snapshot returns nil) when reg
// is nil, so callers wire `win.Advance(...)` unconditionally.
func NewWindows(reg *Registry, opt WindowOptions) *Windows {
	if reg == nil {
		return nil
	}
	opt = opt.withDefaults()
	return &Windows{
		reg:    reg,
		bucket: opt.Bucket,
		n:      opt.Buckets,
		ring:   make([]windowCell, opt.Buckets+1),
		stopCh: make(chan struct{}),
	}
}

// Bucket returns the bucket duration (0 on nil).
func (w *Windows) Bucket() time.Duration {
	if w == nil {
		return 0
	}
	return w.bucket
}

// Advance captures the registry's current cumulative snapshot, pushes it
// into the ring when a bucket boundary has passed since the newest sample
// (calling more often than the bucket duration refreshes the leading edge
// without rotating the ring, so scrapes and tickers can both drive the same
// window), and returns the aggregate over the retained span. Nil-safe.
func (w *Windows) Advance(now time.Time) *WindowSnapshot {
	if w == nil {
		return nil
	}
	return w.advance(now, w.reg.Snapshot())
}

// AdvanceWith is Advance against an already-taken cumulative snapshot, so
// one registry read can serve both the cumulative and windowed halves of a
// /debug/metrics payload.
func (w *Windows) AdvanceWith(now time.Time, cur Snapshot) *WindowSnapshot {
	if w == nil {
		return nil
	}
	return w.advance(now, cur)
}

func (w *Windows) advance(now time.Time, cur Snapshot) *WindowSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.count == 0 {
		w.ring[0] = windowCell{at: now, snap: cur}
		w.start, w.count = 0, 1
	} else if newest := w.ring[(w.start+w.count-1)%len(w.ring)]; now.Sub(newest.at) >= w.bucket {
		// A bucket boundary passed: rotate the ring. Sub-bucket calls fall
		// through — the aggregate below always uses the live snapshot as its
		// leading edge, so they still see fresh data without rotating.
		if w.count == len(w.ring) {
			w.start = (w.start + 1) % len(w.ring) // evict the oldest bucket
		} else {
			w.count++
		}
		w.ring[(w.start+w.count-1)%len(w.ring)] = windowCell{at: now, snap: cur}
	}
	oldest := w.ring[w.start]
	return diffSnapshots(oldest, windowCell{at: now, snap: cur})
}

// Snapshot returns the current window aggregate without touching the ring —
// a pure read for callers that must not advance time (nil on a nil window
// or before the first Advance).
func (w *Windows) Snapshot() *WindowSnapshot {
	if w == nil {
		return nil
	}
	cur := w.reg.Snapshot()
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.count == 0 {
		return nil
	}
	return diffSnapshots(w.ring[w.start], windowCell{at: now, snap: cur})
}

// Start advances the window on its bucket cadence from a background
// goroutine until the returned stop function is called (idempotent).
// Nil-safe: a nil window returns a no-op stop.
func (w *Windows) Start() (stop func()) {
	if w == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(w.bucket)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				w.Advance(now)
			case <-w.stopCh:
				return
			}
		}
	}()
	return func() {
		w.stopOnce.Do(func() { close(w.stopCh) })
		<-done
	}
}

// WindowCounter is one counter's change over the window.
type WindowCounter struct {
	Delta int64   `json:"delta"`
	Rate  float64 `json:"rate"` // per second over the covered span
}

// WindowHistogram is one histogram's change over the window: the
// observation count and rate, the mean of the windowed observations, and
// quantiles interpolated from the windowed per-bucket counts.
type WindowHistogram struct {
	Count int64   `json:"count"`
	Rate  float64 `json:"rate"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// WindowSnapshot is the windowed complement of a cumulative Snapshot: what
// changed over the last covered span, shaped for the /debug/metrics
// payload's "window" field.
type WindowSnapshot struct {
	// Seconds is the span the window actually covers — it grows from ~0
	// toward the configured window as the ring fills after startup.
	Seconds    float64                    `json:"seconds"`
	Counters   map[string]WindowCounter   `json:"counters"`
	Histograms map[string]WindowHistogram `json:"histograms"`
}

// diffSnapshots aggregates the change between two cumulative samples.
func diffSnapshots(oldc, newc windowCell) *WindowSnapshot {
	secs := newc.at.Sub(oldc.at).Seconds()
	ws := &WindowSnapshot{
		Seconds:    secs,
		Counters:   map[string]WindowCounter{},
		Histograms: map[string]WindowHistogram{},
	}
	rate := func(delta float64) float64 {
		if secs <= 0 {
			return 0
		}
		return delta / secs
	}
	for name, v := range newc.snap.Counters {
		d := v - oldc.snap.Counters[name] // absent in the old sample = registered mid-window, baseline 0
		if d < 0 {
			d = 0 // a restarted source behind a merge; never report negative traffic
		}
		ws.Counters[name] = WindowCounter{Delta: d, Rate: rate(float64(d))}
	}
	for name, h := range newc.snap.Histograms {
		oldh := oldc.snap.Histograms[name]
		wh := WindowHistogram{Count: h.Count - oldh.Count}
		if wh.Count < 0 {
			wh.Count = 0
		}
		wh.Rate = rate(float64(wh.Count))
		if wh.Count > 0 {
			wh.Mean = (h.Sum - oldh.Sum) / float64(wh.Count)
			buckets := diffBuckets(h.Buckets, oldh.Buckets)
			wh.P50 = bucketQuantile(buckets, wh.Count, 0.50)
			wh.P95 = bucketQuantile(buckets, wh.Count, 0.95)
			wh.P99 = bucketQuantile(buckets, wh.Count, 0.99)
		}
		ws.Histograms[name] = wh
	}
	return ws
}

// diffBuckets subtracts the old per-bucket counts from the new ones,
// matching buckets by upper edge (snapshots omit empty buckets, so the two
// lists need not align index-by-index).
func diffBuckets(newb, oldb []Bucket) []Bucket {
	old := make(map[float64]int64, len(oldb))
	for _, b := range oldb {
		old[b.Le] = b.Count
	}
	out := make([]Bucket, 0, len(newb))
	for _, b := range newb {
		d := b.Count - old[b.Le]
		if d < 0 {
			d = 0
		}
		out = append(out, Bucket{Le: b.Le, Count: d})
	}
	return out
}

// bucketQuantile interpolates the p-quantile from per-bucket (non-
// cumulative) counts, mirroring Histogram.Quantile: linear interpolation
// inside the bucket holding the target rank, overflow clamped to the last
// finite edge.
func bucketQuantile(buckets []Bucket, total int64, p float64) float64 {
	if total <= 0 || len(buckets) == 0 {
		return 0
	}
	rank := p * float64(total)
	cum := 0.0
	lastFinite := 0.0
	for _, b := range buckets {
		if b.Le < floatInf {
			lastFinite = b.Le
		}
	}
	lo := 0.0
	for _, b := range buckets {
		n := float64(b.Count)
		if n > 0 && cum+n >= rank {
			if b.Le >= floatInf {
				return lastFinite // overflow bucket: clamp like the cumulative path
			}
			frac := (rank - cum) / n
			return lo + frac*(b.Le-lo)
		}
		cum += n
		if b.Le < floatInf {
			lo = b.Le // empty buckets still tighten the interpolation interval
		}
	}
	return lastFinite
}
