package obs

import (
	"testing"
	"time"
)

// BenchmarkWindowOverhead pins the window layer's design claim: attaching
// a sliding window (with its background ticker advancing every bucket)
// adds nothing to the metric hot path, because window aggregates are
// derived from cumulative snapshots at bucket boundaries rather than from
// a second per-observation write path. The windowed variant must stay
// within noise of cumulative-only; reference run committed as
// results_bench_window.txt.
func BenchmarkWindowOverhead(b *testing.B) {
	run := func(b *testing.B, windowed bool) {
		reg := NewRegistry()
		c := reg.Counter("bench.requests")
		h := reg.Histogram("bench.latency_seconds")
		if windowed {
			// An aggressively short bucket: the ticker snapshots the registry
			// hundreds of times over the benchmark, the worst case for any
			// hot-path interference the design is supposed to rule out.
			w := NewWindows(reg, WindowOptions{Bucket: time.Millisecond, Buckets: 8})
			stop := w.Start()
			defer stop()
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
				h.Observe(0.0001)
			}
		})
	}
	b.Run("cumulative-only", func(b *testing.B) { run(b, false) })
	b.Run("windowed", func(b *testing.B) { run(b, true) })
}
