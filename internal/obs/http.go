package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Debug bundles the data sources behind the debug HTTP surface. Any field
// may be nil; the corresponding endpoint then serves an empty document.
type Debug struct {
	Metrics *Registry
	Spans   *SpanRing
	Profile *Profiler   // /debug/profile per-layer table
	Join    *SpanJoiner // /debug/spans?join=1 joined timelines

	// Windows, when set, attaches the sliding-window aggregate to every
	// /debug/metrics payload (the snapshot's "window" field / the prom
	// *_window_* gauges). Each scrape advances the window's leading edge,
	// so a scrape-driven deployment needs no background ticker.
	Windows *Windows

	// Events, when set, serves the SLO event ring at /debug/events.
	Events *EventRing

	// EventSources are extra labelled event feeds merged into
	// /debug/events — the fan-out twin of Sources, how a gateway serves
	// its whole fleet's alert stream from one endpoint.
	EventSources []EventSource

	// Sources are extra labelled metric feeds merged into /debug/metrics
	// under "<label>." prefixes — how a gateway re-exports its whole
	// backend fleet's metrics from one endpoint. Fetch failures surface as
	// merge.failed.<label> counters instead of failing the request.
	Sources []SnapshotSource

	// Extra mounts additional handlers on the debug mux by pattern
	// (e.g. "/debug/audit") — how subsystem endpoints join the surface
	// without obs importing them. A pattern that collides with a built-in
	// route panics in Handler.
	Extra map[string]http.Handler
}

// debugBuiltins are the routes Handler always mounts; Extra patterns must
// not collide with them.
var debugBuiltins = map[string]bool{
	"/":                    true,
	"/debug/metrics":       true,
	"/debug/spans":         true,
	"/debug/profile":       true,
	"/debug/events":        true,
	"/debug/vars":          true,
	"/debug/pprof/":        true,
	"/debug/pprof/cmdline": true,
	"/debug/pprof/profile": true,
	"/debug/pprof/symbol":  true,
	"/debug/pprof/trace":   true,
}

// snapshot builds the /debug/metrics payload: the base registry's
// cumulative state, the attached window's aggregate over it, and every
// source's snapshot folded in under its label.
func (d Debug) snapshot(now time.Time) Snapshot {
	snap := d.Metrics.Snapshot()
	snap.Window = d.Windows.AdvanceWith(now, snap)
	for _, src := range d.Sources {
		if src.Fetch == nil {
			continue
		}
		s, err := src.Fetch()
		if err != nil {
			snap.Counters["merge.failed."+src.Label] = 1
			continue
		}
		MergeSnapshot(&snap, src.Label, s)
	}
	return snap
}

// Handler serves the debug surface:
//
//	/debug/metrics              JSON Snapshot of every registered metric
//	/debug/metrics?format=prom  the same snapshot as Prometheus text exposition
//	/debug/spans                JSON list of recent completed spans (?n= limits, newest kept)
//	/debug/spans?join=1         client and server spans joined per trace ID
//	/debug/profile              cumulative per-layer compute profile (?format=csv|text)
//	/debug/events               SLO transition events (JSON, ?after=seq)
//	/debug/vars                 the process's expvar map (memstats, cmdline)
//	/debug/pprof/*              the standard pprof profiles
//
// A registry attached via Metrics also gets the process.* runtime gauges
// registered (idempotently) so every debug surface exports them.
func (d Debug) Handler() http.Handler {
	RegisterProcessMetrics(d.Metrics)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := d.snapshot(time.Now())
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", PromContentType)
			if err := WriteProm(w, snap); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		var out []Event
		if len(d.EventSources) > 0 {
			out = MergedEvents(d.Events, d.EventSources)
		} else if q := r.URL.Query().Get("after"); q != "" {
			if after, err := strconv.ParseUint(q, 10, 64); err == nil {
				out = d.Events.Since(after)
			}
		} else {
			out = d.Events.Snapshot()
		}
		if out == nil {
			out = []Event{}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("join") == "1" {
			out := d.Join.Joined()
			if out == nil {
				out = []JoinedSpan{}
			}
			writeJSON(w, out)
			return
		}
		out := d.Spans.Snapshot()
		if q := r.URL.Query().Get("n"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n >= 0 && n < len(out) {
				out = out[len(out)-n:]
			}
		}
		if out == nil {
			out = []Span{}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			if err := d.Profile.WriteCSV(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			d.Profile.WriteTable(w)
		default:
			out := d.Profile.Table()
			if out == nil {
				out = []LayerProfile{}
			}
			writeJSON(w, out)
		}
	})
	extra := ""
	for _, pattern := range sortedKeys(d.Extra) {
		if debugBuiltins[pattern] {
			panic(fmt.Sprintf("obs: Debug.Extra pattern %q collides with a built-in debug route", pattern))
		}
		mux.Handle(pattern, d.Extra[pattern])
		extra += pattern + "\n"
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "shredder debug endpoint\n\n"+
			"/debug/metrics        metrics snapshot (JSON, ?format=prom for Prometheus text)\n"+
			"/debug/spans          recent request spans (JSON, ?n=N)\n"+
			"/debug/spans?join=1   joined client+server timelines (JSON)\n"+
			"/debug/profile        per-layer compute profile (JSON, ?format=csv|text)\n"+
			"/debug/events         SLO transition events (JSON, ?after=seq)\n"+
			"/debug/vars           expvar\n"+
			"/debug/pprof/         profiles\n"+extra)
	})
	return mux
}

// Handler serves the debug surface for a registry and span ring — the
// original two-source form, kept for callers that need neither profiling
// nor span joining.
func Handler(reg *Registry, spans *SpanRing) http.Handler {
	return Debug{Metrics: reg, Spans: spans}.Handler()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	Addr string // bound address, e.g. "127.0.0.1:43123"
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves d.Handler() on
// background goroutines until Close.
func (d Debug) Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	ds := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: d.Handler()}}
	go ds.srv.Serve(ln)
	return ds, nil
}

// ServeDebug binds addr and serves Handler(reg, spans) until Close.
func ServeDebug(addr string, reg *Registry, spans *SpanRing) (*DebugServer, error) {
	return Debug{Metrics: reg, Spans: spans}.Serve(addr)
}

// Close stops the listener and closes open debug connections.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
