package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the debug surface for a registry and span ring:
//
//	/debug/metrics  JSON Snapshot of every registered metric
//	/debug/spans    JSON list of recent completed spans (?n= limits, newest kept)
//	/debug/vars     the process's expvar map (memstats, cmdline)
//	/debug/pprof/*  the standard pprof profiles
//
// Either argument may be nil; the endpoints then serve empty documents.
func Handler(reg *Registry, spans *SpanRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		out := spans.Snapshot()
		if q := r.URL.Query().Get("n"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n >= 0 && n < len(out) {
				out = out[len(out)-n:]
			}
		}
		if out == nil {
			out = []Span{}
		}
		writeJSON(w, out)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "shredder debug endpoint\n\n"+
			"/debug/metrics  metrics snapshot (JSON)\n"+
			"/debug/spans    recent request spans (JSON, ?n=N)\n"+
			"/debug/vars     expvar\n"+
			"/debug/pprof/   profiles\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	Addr string // bound address, e.g. "127.0.0.1:43123"
	ln   net.Listener
	srv  *http.Server
}

// ServeDebug binds addr (e.g. "127.0.0.1:0") and serves Handler(reg, spans)
// on background goroutines until Close.
func ServeDebug(addr string, reg *Registry, spans *SpanRing) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	d := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: Handler(reg, spans)}}
	go d.srv.Serve(ln)
	return d, nil
}

// Close stops the listener and closes open debug connections.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
