package obs

import (
	"testing"
	"time"
)

// joinFixture builds a matched client/server span pair with a known clock
// offset: the server span's midpoint is placed exactly offset away from the
// midpoint of the client's wait stage, so JoinSpans must recover offset.
func joinFixture(trace TraceID, offset time.Duration) (client, server Span) {
	base := time.Unix(1_700_000_000, 0)
	client = Span{
		Trace: trace, Name: "infer", ID: 3, Start: base,
		Dur: 10 * time.Millisecond,
		Stages: []Stage{
			{Name: "quantize", Dur: 1 * time.Millisecond},
			{Name: "serialize", Dur: 2 * time.Millisecond},
			{Name: "send", Dur: 1 * time.Millisecond},
			{Name: "wait", Dur: 5 * time.Millisecond},
			{Name: "decode", Dur: 1 * time.Millisecond},
		},
		Attrs: map[string]float64{"bits": 8, "shared": 1},
	}
	// sendEnd = base+4ms, wait midpoint = base+6.5ms (client clock).
	const srvDur = 3 * time.Millisecond
	server = Span{
		Trace: trace, Name: "request",
		Start: base.Add(6500*time.Microsecond + offset - srvDur/2),
		Dur:   srvDur,
		Stages: []Stage{
			{Name: "queue", Dur: 500 * time.Microsecond},
			{Name: "batch", Dur: 500 * time.Microsecond},
			{Name: "compute", Dur: 2 * time.Millisecond},
		},
		Attrs: map[string]float64{"batch_size": 2, "shared": 99},
	}
	return client, server
}

// TestJoinSpansSevenStages joins one matched pair and checks the canonical
// seven-stage timeline comes out in order with both sides' durations, the
// client identity fields, and attrs merged with the client winning ties.
func TestJoinSpansSevenStages(t *testing.T) {
	cs, ss := joinFixture(7, 0)
	joined := JoinSpans([]Span{cs}, []Span{ss})
	if len(joined) != 1 {
		t.Fatalf("joined %d spans, want 1", len(joined))
	}
	j := joined[0]
	if j.Trace != 7 || j.ID != 3 || !j.Start.Equal(cs.Start) || j.Dur != cs.Dur {
		t.Fatalf("client identity not preserved: %+v", j)
	}
	if len(j.Stages) != len(JoinedStages) {
		t.Fatalf("%d stages, want %d", len(j.Stages), len(JoinedStages))
	}
	for i, name := range JoinedStages {
		if j.Stages[i].Name != name {
			t.Fatalf("stage %d is %q, want %q", i, j.Stages[i].Name, name)
		}
	}
	// wait (5ms) brackets the server span (3ms), so each reconstructed
	// network leg is 1ms, folded into send and decode.
	want := map[string]time.Duration{
		"quantize": time.Millisecond, "serialize": 2 * time.Millisecond,
		"send": 2 * time.Millisecond, "queue": 500 * time.Microsecond,
		"batch": 500 * time.Microsecond, "compute": 2 * time.Millisecond,
		"decode": 2 * time.Millisecond,
	}
	var sum time.Duration
	for name, d := range want {
		if got := j.StageDur(name); got != d {
			t.Fatalf("stage %q = %v, want %v", name, got, d)
		}
		sum += d
	}
	if sum > j.Dur {
		t.Fatalf("stage sum %v exceeds span duration %v", sum, j.Dur)
	}
	if j.Attrs["bits"] != 8 || j.Attrs["batch_size"] != 2 {
		t.Fatalf("attrs not merged: %+v", j.Attrs)
	}
	if j.Attrs["shared"] != 1 {
		t.Fatalf("client attr must win a key collision, got %v", j.Attrs["shared"])
	}
	if j.Skewed {
		t.Fatal("symmetric fixture flagged Skewed")
	}
}

// TestJoinClampsSkewedStages pins the clock-skew fix: when the server span
// is *wider* than the client wait that brackets it (asymmetric links or
// skewed timestamps make the reconstructed network legs negative), the join
// must clamp the legs at zero — never emit a negative send/decode stage —
// and flag the timeline Skewed.
func TestJoinClampsSkewedStages(t *testing.T) {
	cs, ss := joinFixture(21, 0)
	ss.Dur = 8 * time.Millisecond // wait is 5ms: legs would be -1.5ms each
	joined := JoinSpans([]Span{cs}, []Span{ss})
	if len(joined) != 1 {
		t.Fatalf("joined %d spans, want 1", len(joined))
	}
	j := joined[0]
	if !j.Skewed {
		t.Fatal("negative reconstructed legs not flagged Skewed")
	}
	for _, st := range j.Stages {
		if st.Dur < 0 {
			t.Fatalf("stage %q negative after clamp: %v", st.Name, st.Dur)
		}
	}
	// With the legs clamped, send and decode fall back to their locally
	// measured wall times.
	if j.StageDur("send") != time.Millisecond || j.StageDur("decode") != time.Millisecond {
		t.Fatalf("clamped legs altered measured stages: %+v", j.Stages)
	}

	// A hostile/buggy peer shipping a negative stage duration is clamped
	// too rather than poisoning the timeline.
	cs2, ss2 := joinFixture(22, 0)
	ss2.Stages[0].Dur = -time.Millisecond // queue
	j2 := JoinSpans([]Span{cs2}, []Span{ss2})[0]
	if j2.StageDur("queue") != 0 || !j2.Skewed {
		t.Fatalf("negative peer stage survived: %+v", j2)
	}
}

// TestJoinClockOffset plants known server-minus-client offsets and checks
// the RTT-midpoint estimate recovers them exactly (the fixture's legs are
// symmetric by construction).
func TestJoinClockOffset(t *testing.T) {
	for _, offset := range []time.Duration{0, time.Second, -250 * time.Millisecond} {
		cs, ss := joinFixture(9, offset)
		joined := JoinSpans([]Span{cs}, []Span{ss})
		if len(joined) != 1 {
			t.Fatalf("offset %v: joined %d spans", offset, len(joined))
		}
		if got := joined[0].ClockOffset; got != offset {
			t.Fatalf("clock offset %v, want %v", got, offset)
		}
	}
}

// TestJoinSpansSkipsUnjoinable checks untraced and unmatched spans are
// dropped rather than mis-paired, and empty inputs join to nothing.
func TestJoinSpansSkipsUnjoinable(t *testing.T) {
	cs, ss := joinFixture(11, 0)
	untraced := cs
	untraced.Trace = 0
	orphan := cs
	orphan.Trace = 12 // no matching server span
	joined := JoinSpans([]Span{untraced, orphan, cs}, []Span{ss})
	if len(joined) != 1 || joined[0].Trace != 11 {
		t.Fatalf("join kept the wrong spans: %+v", joined)
	}
	if got := JoinSpans(nil, []Span{ss}); got != nil {
		t.Fatalf("empty client side joined: %+v", got)
	}
	if got := JoinSpans([]Span{cs}, nil); got != nil {
		t.Fatalf("empty server side joined: %+v", got)
	}
}

// TestJoinComputeFallbackAndErr checks a server span without a stage
// breakdown attributes its whole duration to compute, and a server-side
// error surfaces on the joined span when the client recorded none.
func TestJoinComputeFallbackAndErr(t *testing.T) {
	cs, ss := joinFixture(13, 0)
	ss.Stages = nil
	ss.Err = "scripted"
	j := JoinSpans([]Span{cs}, []Span{ss})[0]
	if got := j.StageDur("compute"); got != ss.Dur {
		t.Fatalf("compute fallback %v, want server duration %v", got, ss.Dur)
	}
	if j.StageDur("queue") != 0 || j.StageDur("batch") != 0 {
		t.Fatalf("fallback invented queue/batch time: %+v", j.Stages)
	}
	if j.Err != "scripted" {
		t.Fatalf("server error lost: %+v", j)
	}
}

// TestSpanJoiner covers the ring-pairing wrapper, including the nil form.
func TestSpanJoiner(t *testing.T) {
	var nilJoiner *SpanJoiner
	if got := nilJoiner.Joined(); got != nil {
		t.Fatalf("nil joiner joined: %+v", got)
	}
	cs, ss := joinFixture(17, 0)
	j := &SpanJoiner{Client: NewSpanRing(4), Server: NewSpanRing(4)}
	j.Client.Record(cs)
	j.Server.Record(ss)
	joined := j.Joined()
	if len(joined) != 1 || joined[0].Trace != 17 {
		t.Fatalf("joiner result: %+v", joined)
	}
	if (&SpanJoiner{}).Joined() != nil {
		t.Fatal("joiner over nil rings must join to nothing")
	}
}
