package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramEmptyQuantiles pins the zero-observation edge: every
// quantile of an empty histogram is 0 — never NaN — and the snapshot (whose
// JSON encoding would fail outright on a NaN) marshals cleanly.
func TestHistogramEmptyQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("empty", 0.001, 0.01, 0.1)
	for _, p := range []float64{0.50, 0.95, 0.99} {
		q := h.Quantile(p)
		if math.IsNaN(q) || q != 0 {
			t.Fatalf("empty histogram p%g = %v, want 0", 100*p, q)
		}
	}
	snap := reg.Snapshot()
	hs := snap.Histograms["empty"]
	if hs.Count != 0 || hs.Sum != 0 || hs.P50 != 0 || hs.P95 != 0 || hs.P99 != 0 {
		t.Fatalf("empty histogram snapshot not all-zero: %+v", hs)
	}
	if len(hs.Buckets) != 0 {
		t.Fatalf("empty histogram has buckets: %+v", hs.Buckets)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("empty-histogram snapshot does not marshal: %v", err)
	}
}

// TestHistogramOverflowBucket pins the +Inf overflow edge: ranks landing in
// the overflow bucket clamp to the last finite bound (not +Inf, not NaN),
// ranks below it still interpolate inside their finite bucket, and the
// snapshot exposes the overflow bucket with Le = +Inf through JSON.
func TestHistogramOverflowBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ovf", 1, 2)
	// 10 observations in (1,2], 90 in the overflow bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 90; i++ {
		h.Observe(50)
	}
	// p5 (rank 5 of 100) lands inside the finite (1,2] bucket: interpolated
	// strictly between the edges.
	if q := h.Quantile(0.05); !(q > 1 && q < 2) {
		t.Fatalf("p5 = %v, want interpolation inside (1,2)", q)
	}
	// p50 and p99 land in the overflow bucket: clamped to the last bound.
	for _, p := range []float64{0.50, 0.99} {
		q := h.Quantile(p)
		if math.IsNaN(q) || math.IsInf(q, 0) || q != 2 {
			t.Fatalf("overflow p%g = %v, want clamp to 2", 100*p, q)
		}
	}

	snap := reg.Snapshot()
	hs := snap.Histograms["ovf"]
	if hs.Count != 100 || len(hs.Buckets) != 2 {
		t.Fatalf("overflow snapshot: %+v", hs)
	}
	if hs.Buckets[0].Le != 2 || hs.Buckets[0].Count != 10 {
		t.Fatalf("finite bucket: %+v", hs.Buckets[0])
	}
	if !math.IsInf(hs.Buckets[1].Le, 1) || hs.Buckets[1].Count != 90 {
		t.Fatalf("overflow bucket: %+v", hs.Buckets[1])
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("overflow snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if bs := back.Histograms["ovf"].Buckets; !math.IsInf(bs[1].Le, 1) {
		t.Fatalf("overflow edge lost in JSON round trip: %+v", bs)
	}
}

// TestSpanRingConcurrent runs several recorders against one small ring with
// eviction constantly in flight while pollers snapshot and read Total (run
// under -race). Invariants checked live: Total never goes backwards, a
// snapshot never exceeds capacity, and within any snapshot each writer's
// spans appear oldest-first (per-writer IDs strictly increasing — Record
// order is preserved by the ring).
func TestSpanRingConcurrent(t *testing.T) {
	const capacity, writers, per = 64, 4, 500
	ring := NewSpanRing(capacity)

	done := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		var lastTotal uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			total := ring.Total()
			if total < lastTotal {
				t.Errorf("Total went backwards: %d -> %d", lastTotal, total)
				return
			}
			lastTotal = total
			snap := ring.Snapshot()
			if len(snap) > capacity {
				t.Errorf("snapshot holds %d spans, capacity %d", len(snap), capacity)
				return
			}
			if !perWriterOrdered(snap, writers) {
				t.Errorf("snapshot not oldest-first per writer: %+v", snap)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ring.Record(Span{
					Name:  "s",
					Trace: NewTraceID(),
					ID:    uint64(w)*1_000_000 + uint64(i) + 1,
					Dur:   time.Microsecond,
				})
			}
		}(w)
	}
	wg.Wait()
	close(done)
	pollWG.Wait()

	if got := ring.Total(); got != writers*per {
		t.Fatalf("Total = %d, want %d", got, writers*per)
	}
	final := ring.Snapshot()
	if len(final) != capacity {
		t.Fatalf("final snapshot holds %d spans, want full capacity %d", len(final), capacity)
	}
	if !perWriterOrdered(final, writers) {
		t.Fatalf("final snapshot not oldest-first: %+v", final)
	}
	// The ring keeps the newest spans: every writer's tail record (its
	// highest ID) cannot have been evicted by older ones, so the very last
	// batch of IDs must be represented.
	maxID := uint64(0)
	for _, s := range final {
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	if maxID%1_000_000 != per {
		t.Fatalf("newest retained span has ID %d, want some writer's final record", maxID)
	}
}

// perWriterOrdered reports whether, for each writer, the span IDs appear in
// strictly increasing order — the oldest-first guarantee projected onto one
// writer's subsequence.
func perWriterOrdered(spans []Span, writers int) bool {
	last := make([]uint64, writers)
	for _, s := range spans {
		w := int(s.ID / 1_000_000)
		if w < 0 || w >= writers {
			return false
		}
		if s.ID <= last[w] {
			return false
		}
		last[w] = s.ID
	}
	return true
}
