package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// TrainingEvent is one evaluation-point snapshot of a noise-training run —
// the series behind the paper's Figures 3–5 (loss and cross-entropy
// components, the noise L1 norm the privacy term grows, the in vivo 1/SNR
// privacy) plus the run label and elapsed wall time.
type TrainingEvent struct {
	Run       string        // which run emitted it, e.g. "member-03"
	Iteration int           // training iteration
	Epoch     float64       // fractional epochs completed
	Loss      float64       // total Shredder loss (CE − λΣ|n|)
	CE        float64       // cross-entropy component
	NoiseL1   float64       // Σ|n|, the magnitude the privacy term grows
	InVivo    float64       // 1/SNR at this point
	BatchAcc  float64       // accuracy on the current batch, with noise
	Lambda    float64       // current λ (after decay)
	Elapsed   time.Duration // wall time since the run started
}

// Hook receives training events. A nil Hook is a valid "not subscribed"
// hook; emit through Emit so the nil case stays a no-op. Hooks must be safe
// for concurrent use when runs train in parallel (core.Collect).
type Hook func(TrainingEvent)

// Emit delivers ev unless the hook is nil.
func (h Hook) Emit(ev TrainingEvent) {
	if h != nil {
		h(ev)
	}
}

// Hooks fans one event stream out to several hooks, skipping nils. All-nil
// input collapses to a nil (no-op) hook.
func Hooks(hs ...Hook) Hook {
	live := make([]Hook, 0, len(hs))
	for _, h := range hs {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev TrainingEvent) {
		for _, h := range live {
			h(ev)
		}
	}
}

// ProgressHook renders each event as one human-readable line on w —
// the live training progress view. Safe for concurrent runs (one event is
// one write, serialized by a mutex).
func ProgressHook(w io.Writer) Hook {
	var mu sync.Mutex
	return func(ev TrainingEvent) {
		mu.Lock()
		defer mu.Unlock()
		run := ev.Run
		if run == "" {
			run = "noise"
		}
		fmt.Fprintf(w, "%s iter %4d (epoch %.2f): loss %.4f ce %.4f |n|1 %.2f 1/snr %.3f acc %.1f%% lambda %.4g [%s]\n",
			run, ev.Iteration, ev.Epoch, ev.Loss, ev.CE, ev.NoiseL1,
			ev.InVivo, 100*ev.BatchAcc, ev.Lambda, ev.Elapsed.Round(time.Millisecond))
	}
}

// CSVHook writes events as CSV rows on w (header first), producing the
// plottable curves behind Figures 3–5. Safe for concurrent runs.
func CSVHook(w io.Writer) Hook {
	var mu sync.Mutex
	headered := false
	return func(ev TrainingEvent) {
		mu.Lock()
		defer mu.Unlock()
		if !headered {
			fmt.Fprintln(w, "run,iteration,epoch,loss,ce,noise_l1,invivo,batch_acc,lambda,elapsed_s")
			headered = true
		}
		fmt.Fprintf(w, "%s,%d,%.4f,%.6f,%.6f,%.6f,%.6f,%.4f,%.6g,%.3f\n",
			ev.Run, ev.Iteration, ev.Epoch, ev.Loss, ev.CE, ev.NoiseL1,
			ev.InVivo, ev.BatchAcc, ev.Lambda, ev.Elapsed.Seconds())
	}
}

// MetricsHook mirrors the latest event into registry gauges under the given
// prefix (default "train") and counts events, so a live /debug/metrics poll
// shows training progress next to the serving metrics.
func MetricsHook(r *Registry, prefix string) Hook {
	if r == nil {
		return nil
	}
	if prefix == "" {
		prefix = "train"
	}
	events := r.Counter(prefix + ".events")
	iter := r.Gauge(prefix + ".iteration")
	epoch := r.Gauge(prefix + ".epoch")
	loss := r.Gauge(prefix + ".loss")
	ce := r.Gauge(prefix + ".ce")
	l1 := r.Gauge(prefix + ".noise_l1")
	invivo := r.Gauge(prefix + ".invivo")
	acc := r.Gauge(prefix + ".batch_acc")
	lambda := r.Gauge(prefix + ".lambda")
	return func(ev TrainingEvent) {
		events.Inc()
		iter.Set(float64(ev.Iteration))
		epoch.Set(ev.Epoch)
		loss.Set(ev.Loss)
		ce.Set(ev.CE)
		l1.Set(ev.NoiseL1)
		invivo.Set(ev.InVivo)
		acc.Set(ev.BatchAcc)
		lambda.Set(ev.Lambda)
	}
}
