// Benchmarks for the fitted noise-distribution modes: the per-query cost of
// sampling fresh noise versus replaying a stored member, and the resident
// memory each deployment mode carries.
//
// A stored draw is an index pick plus an O(n) add. A fitted draw maps n
// stratified uniforms — born sorted, so no sort — through a member's
// quantile sketch and scatters them through that member's order
// permutation, also O(n) per query; the benchmark quantifies what fresh
// per-query sampling costs in latency over replay. The fitted-mul variant
// pays that twice (weight and noise). Reference run committed as
// results_bench_fitted.txt.
package shredder

import (
	"sync"
	"testing"

	"shredder/internal/core"
	"shredder/internal/noisedist"
	"shredder/internal/tensor"
)

// fittedBench trains one small additive and one multiplicative collection
// and fits both, shared across all fitted benchmarks of a run.
var fittedBench = struct {
	once   sync.Once
	col    *core.Collection
	fit    *core.FittedCollection
	mulFit *core.FittedCollection
	act    *tensor.Tensor // one clean per-sample activation
}{}

func fittedSources(b *testing.B) {
	fittedBench.once.Do(func() {
		pre, spl := lenetSplit(b)
		nc := core.NoiseConfig{Scale: 2, Lambda: 0.01, PrivacyTarget: 4, Epochs: 1, Seed: 1}
		col := core.Collect(spl, pre.Train, nc, 8, 1)
		fit, err := core.FitCollection(col, noisedist.Laplace)
		if err != nil {
			b.Fatal(err)
		}
		mulNC := nc
		mulNC.Multiplicative = true
		mulCol := core.Collect(spl, pre.Train, mulNC, 8, 1)
		mulFit, err := core.FitCollection(mulCol, noisedist.Laplace)
		if err != nil {
			b.Fatal(err)
		}
		fittedBench.col, fittedBench.fit, fittedBench.mulFit = col, fit, mulFit
		fittedBench.act = spl.Local(pre.Test.Batches(1)[0].Images).Slice(0)
	})
}

// benchDraw measures one private query's noise path — draw a perturbation
// and apply it to a clean activation — and reports the source's resident
// size alongside ns/op.
func benchDraw(b *testing.B, src core.NoiseSource, residentBytes int) {
	fittedSources(b)
	rng := tensor.NewRNG(7)
	scratch := fittedBench.act.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(fittedBench.act)
		src.Draw(rng).ApplyInPlace(scratch)
	}
	b.ReportMetric(float64(residentBytes), "residentB")
	b.ReportMetric(float64(tensor.Volume(src.NoiseShape())), "elems")
}

func BenchmarkFittedDraw(b *testing.B) {
	fittedSources(b)
	stored := 8 * tensor.Volume(fittedBench.col.Shape) * fittedBench.col.Len()
	b.Run("stored", func(b *testing.B) { benchDraw(b, fittedBench.col, stored) })
	b.Run("fitted", func(b *testing.B) { benchDraw(b, fittedBench.fit, fittedBench.fit.MemoryBytes()) })
	b.Run("fitted-mul", func(b *testing.B) { benchDraw(b, fittedBench.mulFit, fittedBench.mulFit.MemoryBytes()) })
}

// BenchmarkFittedMemory pins the memory accounting itself: the ratio of
// stored-collection bytes to fitted-parameter bytes at the benchmark cut.
// The fitted footprint is one int32 permutation plus 16 bytes per member,
// so the compression grows linearly with collection size.
func BenchmarkFittedMemory(b *testing.B) {
	fittedSources(b)
	stored := 8 * tensor.Volume(fittedBench.col.Shape) * fittedBench.col.Len()
	fitted := fittedBench.fit.MemoryBytes()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = float64(stored) / float64(fitted)
	}
	b.ReportMetric(ratio, "compression_x")
	b.ReportMetric(float64(stored), "storedB")
	b.ReportMetric(float64(fitted), "fittedB")
}
