// Benchmark pinning the cost of the per-layer profiler on the serving hot
// path. The "disabled" variant is the default server — no profiler attached
// — and must stay within noise of the pre-profiler baseline: the per-range
// check is a single atomic load plus branch. The "enabled" variant prices
// full per-layer timing (two clock reads and an ObserveLayer per layer per
// pass) feeding registry histograms. Reference numbers live in
// results_bench_profile.txt.
package shredder

import (
	"testing"

	"shredder/internal/obs"
)

func BenchmarkProfileOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchServerThroughput(b, 1)
	})
	b.Run("enabled", func(b *testing.B) {
		_, spl := lenetSplit(b)
		// The fixture split is shared across benchmarks: detach on exit so
		// later variants run unobserved.
		spl.Net.SetProfiler(obs.NewProfiler(obs.NewRegistry()))
		defer spl.Net.SetProfiler(nil)
		benchServerThroughput(b, 1)
	})
}
