module shredder

go 1.22
